package tpch

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
)

// maxDeadlockRetries bounds how often one logical transaction is retried
// after losing a deadlock before the error is surfaced.
const maxDeadlockRetries = 50

// rowCPU is the simulated CPU cost per row operation on the OLTP path
// (encode/decode, lock acquisition, index maintenance, log insert): a
// 2012-era core drove roughly 1-2k fully-logged simple transactions
// per second at ~15 row operations each, i.e. tens of microseconds per
// row operation; 50us is on the conservative side of that range. The
// executor charges CPUPerTuple for analytic tuples; transactional row
// operations do strictly more work
// per row, so the driver charges its sessions accordingly — which is
// also what makes concurrency matter: a single-threaded stream leaves
// the storage system idle while it computes, while concurrent workers
// overlap their CPU with each other's I/O.
const rowCPU = 50 * time.Microsecond

// chargeCPU advances the session clock by the CPU cost of n row
// operations.
func chargeCPU(sess *engine.Session, n int) {
	sess.Clk.Advance(time.Duration(n) * rowCPU)
}

// OLTP is the paper's stated future work (Section 8: "We are currently
// extending hStorage-DB for OLTP workloads"): a small transaction mix
// over the TPC-H schema exercising exactly the request classes the rules
// govern —
//
//   - NewOrder: insert one order with its lineitems and maintain the
//     indexes (Rule 4 update traffic into the write buffer),
//   - OrderStatus: point-read an order and its lineitems through the
//     orderkey indexes (Rule 2 random traffic),
//   - Payment: read a customer and an order, then rewrite the order's
//     total price in place (random read + update write).
//
// The mix is 45% NewOrder / 45% Payment / 10% OrderStatus, roughly
// TPC-C's write-heavy balance.
//
// Run executes the mix bare (no durability, as the seed prototype did);
// RunTxn wraps every transaction in Begin/Commit against a transaction
// manager, which adds the log request class to the traffic and makes the
// mix crash-recoverable. A transaction that loses a deadlock under the
// concurrent lock manager is aborted and retried (the Retries counter
// tallies those), so one OLTP driver per worker session is the unit of
// the multi-worker driver (RunOLTPWorkers).
type OLTP struct {
	ds   *Dataset
	rng  *rand.Rand
	rngL *rand.Rand

	ordersInfo *catalog.TableInfo
	lineInfo   *catalog.TableInfo
	custInfo   *catalog.TableInfo

	ordersFile *heap.File
	lineFile   *heap.File
	custFile   *heap.File

	// Stats
	NewOrders     int64
	Payments      int64
	OrderStatuses int64
	// Retries counts deadlock aborts that were retried.
	Retries int64

	// Committed collects the order keys of NewOrder transactions whose
	// commit is durable; Lost collects keys whose transaction was killed
	// by the crash harness before its commit record. The crash-recovery
	// verification checks the former are present and the latter absent.
	Committed []int64
	Lost      []int64
}

// NewOLTP builds a transaction driver over a loaded dataset. Seed varies
// the key sequence per stream; concurrent workers use one driver each.
func (ds *Dataset) NewOLTP(seed int64) *OLTP {
	return &OLTP{
		ds:         ds,
		rng:        rand.New(rand.NewSource(31000 + seed)),
		rngL:       rand.New(rand.NewSource(32000 + seed)),
		ordersInfo: ds.DB.Cat.MustTable("orders"),
		lineInfo:   ds.DB.Cat.MustTable("lineitem"),
		custInfo:   ds.DB.Cat.MustTable("customer"),
		ordersFile: heap.NewFile(ds.DB.Cat.MustTable("orders").ID, ds.DB.Cat.MustTable("orders").Schema, policy.Table),
		lineFile:   heap.NewFile(ds.DB.Cat.MustTable("lineitem").ID, ds.DB.Cat.MustTable("lineitem").Schema, policy.Table),
		custFile:   heap.NewFile(ds.DB.Cat.MustTable("customer").ID, ds.DB.Cat.MustTable("customer").Schema, policy.Table),
	}
}

// AllocOrderKey atomically claims the next unused order key. Safe for
// concurrent workers.
func (ds *Dataset) AllocOrderKey() int64 {
	return atomic.AddInt64(&ds.NextOrderKey, 1) - 1
}

// OrderKeyHorizon atomically reads the first unused order key.
func (ds *Dataset) OrderKeyHorizon() int64 {
	return atomic.LoadInt64(&ds.NextOrderKey)
}

// Run executes n transactions on the session without transactional
// wrapping (the seed behaviour: no WAL, no atomicity).
func (o *OLTP) Run(sess *engine.Session, n int) error {
	for i := 0; i < n; i++ {
		var err error
		switch r := o.rng.Intn(100); {
		case r < 45:
			key := o.ds.AllocOrderKey()
			order, lines := genOrder(o.rng, o.rngL, key, o.ds.Customers, o.ds.Parts, o.ds.Suppliers)
			err = o.newOrder(sess, nil, key, order, lines)
		case r < 90:
			err = o.payment(sess, nil, o.pickPayment())
		default:
			err = o.orderStatus(sess)
		}
		if err != nil {
			return fmt.Errorf("tpch: oltp txn %d: %w", i, err)
		}
	}
	return nil
}

// RunTxn executes n transactions, each wrapped in Begin/Commit against
// the transaction manager. NewOrder and Payment run as mutating
// transactions whose page writes are logged; OrderStatus runs read-only.
// Deadlock losers are aborted and retried transparently. When the
// manager's crash harness fires, RunTxn records the in-flight NewOrder
// key (if any) in Lost and returns txn.ErrCrashed.
func (o *OLTP) RunTxn(tm *txn.Manager, sess *engine.Session, n int) error {
	for i := 0; i < n; i++ {
		var err error
		switch r := o.rng.Intn(100); {
		case r < 45:
			err = o.runNewOrderTxn(tm, sess)
		case r < 90:
			err = o.runPaymentTxn(tm, sess)
		default:
			tx := tm.BeginRead(sess)
			err = o.orderStatus(sess)
			if cerr := tx.Commit(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			if errors.Is(err, txn.ErrCrashed) {
				return err
			}
			return fmt.Errorf("tpch: oltp txn %d: %w", i, err)
		}
	}
	return nil
}

// RunNewOrdersTxn issues n NewOrder transactions back to back. The
// crash-injection phase of the OLTP experiment uses it so the victim
// transaction is always a NewOrder, whose key lands in Lost for the
// recovery verification.
func (o *OLTP) RunNewOrdersTxn(tm *txn.Manager, sess *engine.Session, n int) error {
	for i := 0; i < n; i++ {
		if err := o.runNewOrderTxn(tm, sess); err != nil {
			if errors.Is(err, txn.ErrCrashed) {
				return err
			}
			return fmt.Errorf("tpch: oltp neworder %d: %w", i, err)
		}
	}
	return nil
}

// retryTxn runs one attempt function until it succeeds or fails with
// anything but a deadlock. Deadlock attempts were aborted by the
// attempt; the retry simply re-runs it against the post-abort state.
func (o *OLTP) retryTxn(attempt func() error) error {
	for try := 0; ; try++ {
		err := attempt()
		if err == nil || !errors.Is(err, txn.ErrDeadlock) || try >= maxDeadlockRetries {
			return err
		}
		o.Retries++
		// Let the conflicting transactions drain before retrying.
		runtime.Gosched()
	}
}

// runNewOrderTxn generates one order and commits it transactionally,
// retrying deadlock losses with the same generated rows and key.
func (o *OLTP) runNewOrderTxn(tm *txn.Manager, sess *engine.Session) error {
	key := o.ds.AllocOrderKey()
	order, lines := genOrder(o.rng, o.rngL, key, o.ds.Customers, o.ds.Parts, o.ds.Suppliers)
	err := o.retryTxn(func() error {
		tx, err := tm.Begin(sess)
		if err != nil {
			return err
		}
		if err := o.newOrder(sess, tx, key, order, lines); err != nil {
			_ = tx.Abort()
			return err
		}
		return tx.Commit()
	})
	if err != nil {
		if errors.Is(err, txn.ErrCrashed) {
			o.Lost = append(o.Lost, key)
		}
		return err
	}
	o.Committed = append(o.Committed, key)
	return nil
}

// runPaymentTxn picks the payment's keys once and commits it
// transactionally, retrying deadlock losses with the same picks.
func (o *OLTP) runPaymentTxn(tm *txn.Manager, sess *engine.Session) error {
	p := o.pickPayment()
	return o.retryTxn(func() error {
		tx, err := tm.Begin(sess)
		if err != nil {
			return err
		}
		if err := o.payment(sess, tx, p); err != nil {
			_ = tx.Abort()
			return err
		}
		return tx.Commit()
	})
}

// newOrder appends the generated order + lineitems and maintains the
// indexes. Heap rows are appended (and their pages made visible) before
// any index entry referencing them is inserted, so a concurrent probe
// never dereferences a page that does not exist yet.
func (o *OLTP) newOrder(sess *engine.Session, tx *txn.Txn, key int64, order catalog.Tuple, lines []catalog.Tuple) error {
	inst := sess.Instance()

	if tx != nil {
		tx.Op(wal.KindHeapInsert)
		// Appenders claim their start page from the file's logical size,
		// so concurrent appenders must serialize on the append lock.
		if err := tx.LockAppend(o.ordersInfo.ID); err != nil {
			return err
		}
		if err := tx.LockAppend(o.lineInfo.ID); err != nil {
			return err
		}
	}
	ordersApp := o.ordersFile.NewAppender(&sess.Clk, inst.Pool, o.ds.DB.Store.Pages(o.ordersInfo.ID))
	rid, err := ordersApp.Append(order)
	if err != nil {
		return err
	}
	if err := ordersApp.Close(); err != nil {
		return err
	}
	lineApp := o.lineFile.NewAppender(&sess.Clk, inst.Pool, o.ds.DB.Store.Pages(o.lineInfo.ID))
	lrids := make([]catalog.RID, len(lines))
	for i, l := range lines {
		if lrids[i], err = lineApp.Append(l); err != nil {
			return err
		}
	}
	if err := lineApp.Close(); err != nil {
		return err
	}

	if tx != nil {
		tx.Op(wal.KindIndexInsert)
	}
	chargeCPU(sess, 1+len(lines)) // heap rows appended
	ixOrders := btree.Open(o.ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	if err := ixOrders.Insert(&sess.Clk, btree.Entry{Key: key, RID: rid}, 0); err != nil {
		return err
	}
	ixLineOK := btree.Open(o.ds.DB.Cat.MustIndex("idx_lineitem_orderkey").ID, inst.Pool)
	ixLinePK := btree.Open(o.ds.DB.Cat.MustIndex("idx_lineitem_partkey").ID, inst.Pool)
	for i, l := range lines {
		if err := ixLineOK.Insert(&sess.Clk, btree.Entry{Key: key, RID: lrids[i]}, 0); err != nil {
			return err
		}
		if err := ixLinePK.Insert(&sess.Clk, btree.Entry{Key: l[1].I, RID: lrids[i]}, 0); err != nil {
			return err
		}
	}
	chargeCPU(sess, 1+2*len(lines)) // index entries maintained
	o.NewOrders++
	return nil
}

// recentOrderSpan is the window of latest order keys OrderStatus and
// Payment draw from: as in TPC-C, status queries read a customer's most
// recent order and payments settle freshly placed ones, so the mix's
// read working set is recency-skewed rather than uniform over history.
const recentOrderSpan = 256

// pickOrderKey draws an existing order key: overwhelmingly one of the
// most recent orders — as in TPC-C, where order-status reads a
// customer's latest order — with a 2% uniform draw over the originally
// loaded orders, which keeps a stationary cold-read tail in the mix (a
// fixed historical window, so the tail's cost does not grow as
// experiment runs append history).
func (o *OLTP) pickOrderKey() int64 {
	h := o.ds.OrderKeyHorizon()
	if o.rng.Intn(100) < 98 {
		span := int64(recentOrderSpan)
		if span > h-1 {
			span = h - 1
		}
		return h - span + o.rng.Int63n(span)
	}
	hist := o.ds.Orders
	if hist > h-1 {
		hist = h - 1
	}
	return 1 + o.rng.Int63n(hist)
}

// orderStatus reads one order and its lineitems through the indexes.
func (o *OLTP) orderStatus(sess *engine.Session) error {
	inst := sess.Instance()
	key := o.pickOrderKey()
	ixOrders := btree.Open(o.ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	rids, err := ixOrders.Lookup(&sess.Clk, key, 0)
	if err != nil {
		return err
	}
	for _, rid := range rids {
		if _, err := o.ordersFile.Fetch(&sess.Clk, inst.Pool, rid, 0); err != nil {
			return err
		}
	}
	ixLineOK := btree.Open(o.ds.DB.Cat.MustIndex("idx_lineitem_orderkey").ID, inst.Pool)
	lrids, err := ixLineOK.Lookup(&sess.Clk, key, 0)
	if err != nil {
		return err
	}
	for _, rid := range lrids {
		if _, err := o.lineFile.Fetch(&sess.Clk, inst.Pool, rid, 0); err != nil {
			return err
		}
	}
	chargeCPU(sess, 3+len(lrids)) // rows read + index probes
	o.OrderStatuses++
	return nil
}

// paymentPick is the pre-drawn randomness of one Payment transaction, so
// a deadlock retry re-runs the identical logical transaction.
type paymentPick struct {
	custKey  int64
	orderKey int64
	amount   float64
}

// pickPayment draws the keys and amount for one Payment.
func (o *OLTP) pickPayment() paymentPick {
	return paymentPick{
		custKey:  1 + o.rng.Int63n(o.ds.Customers),
		orderKey: o.pickOrderKey(),
		amount:   1 + o.rng.Float64()*100,
	}
}

// payment reads a customer and an order, then rewrites the order row.
func (o *OLTP) payment(sess *engine.Session, tx *txn.Txn, p paymentPick) error {
	inst := sess.Instance()
	ixCust := btree.Open(o.ds.DB.Cat.MustIndex("idx_customer_custkey").ID, inst.Pool)
	crids, err := ixCust.Lookup(&sess.Clk, p.custKey, 0)
	if err != nil {
		return err
	}
	for _, rid := range crids {
		if _, err := o.custFile.Fetch(&sess.Clk, inst.Pool, rid, 0); err != nil {
			return err
		}
	}

	ixOrders := btree.Open(o.ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	rids, err := ixOrders.Lookup(&sess.Clk, p.orderKey, 0)
	if err != nil {
		return err
	}
	if tx != nil {
		tx.Op(wal.KindHeapUpdate)
	}
	totalCol := o.ordersInfo.Schema.MustCol("o_totalprice")
	for _, rid := range rids {
		row, err := o.ordersFile.Fetch(&sess.Clk, inst.Pool, rid, 0)
		if err != nil {
			return err
		}
		if row == nil {
			continue
		}
		updated := row.Clone()
		updated[totalCol].F += p.amount
		if err := o.ordersFile.Update(&sess.Clk, inst.Pool, rid, updated, 0); err != nil {
			return err
		}
	}
	chargeCPU(sess, 3+len(rids)) // customer + order read, order rewritten
	o.Payments++
	return nil
}

// RecomputeNextOrderKey rescans the orders index after a recovery and
// resets the key allocator past the highest durable order key, discarding
// allocations lost with the crashed instance.
func (ds *Dataset) RecomputeNextOrderKey(sess *engine.Session) error {
	inst := sess.Instance()
	ix := btree.Open(ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	it, err := ix.Seek(&sess.Clk, 0, 1<<62, 0)
	if err != nil {
		return err
	}
	var max int64
	for {
		e, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if e.Key > max {
			max = e.Key
		}
	}
	if max > 0 {
		atomic.StoreInt64(&ds.NextOrderKey, max+1)
	}
	return nil
}
