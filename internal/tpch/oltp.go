package tpch

import (
	"errors"
	"fmt"
	"math/rand"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
)

// OLTP is the paper's stated future work (Section 8: "We are currently
// extending hStorage-DB for OLTP workloads"): a small transaction mix
// over the TPC-H schema exercising exactly the request classes the rules
// govern —
//
//   - NewOrder: insert one order with its lineitems and maintain the
//     indexes (Rule 4 update traffic into the write buffer),
//   - OrderStatus: point-read an order and its lineitems through the
//     orderkey indexes (Rule 2 random traffic),
//   - Payment: read a customer and an order, then rewrite the order's
//     total price in place (random read + update write).
//
// The mix is 45% NewOrder / 45% Payment / 10% OrderStatus, roughly
// TPC-C's write-heavy balance.
//
// Run executes the mix bare (no durability, as the seed prototype did);
// RunTxn wraps every transaction in Begin/Commit against a transaction
// manager, which adds the log request class to the traffic and makes the
// mix crash-recoverable.
type OLTP struct {
	ds   *Dataset
	rng  *rand.Rand
	rngL *rand.Rand

	ordersInfo *catalog.TableInfo
	lineInfo   *catalog.TableInfo
	custInfo   *catalog.TableInfo

	ordersFile *heap.File
	lineFile   *heap.File
	custFile   *heap.File

	// Stats
	NewOrders     int64
	Payments      int64
	OrderStatuses int64

	// Committed collects the order keys of NewOrder transactions whose
	// commit is durable; Lost collects keys whose transaction was killed
	// by the crash harness before its commit record. The crash-recovery
	// verification checks the former are present and the latter absent.
	Committed []int64
	Lost      []int64
}

// NewOLTP builds a transaction driver over a loaded dataset. Seed varies
// the key sequence per stream.
func (ds *Dataset) NewOLTP(seed int64) *OLTP {
	return &OLTP{
		ds:         ds,
		rng:        rand.New(rand.NewSource(31000 + seed)),
		rngL:       rand.New(rand.NewSource(32000 + seed)),
		ordersInfo: ds.DB.Cat.MustTable("orders"),
		lineInfo:   ds.DB.Cat.MustTable("lineitem"),
		custInfo:   ds.DB.Cat.MustTable("customer"),
		ordersFile: heap.NewFile(ds.DB.Cat.MustTable("orders").ID, ds.DB.Cat.MustTable("orders").Schema, policy.Table),
		lineFile:   heap.NewFile(ds.DB.Cat.MustTable("lineitem").ID, ds.DB.Cat.MustTable("lineitem").Schema, policy.Table),
		custFile:   heap.NewFile(ds.DB.Cat.MustTable("customer").ID, ds.DB.Cat.MustTable("customer").Schema, policy.Table),
	}
}

// Run executes n transactions on the session without transactional
// wrapping (the seed behaviour: no WAL, no atomicity).
func (o *OLTP) Run(sess *engine.Session, n int) error {
	for i := 0; i < n; i++ {
		var err error
		switch r := o.rng.Intn(100); {
		case r < 45:
			_, err = o.newOrder(sess, nil)
		case r < 90:
			err = o.payment(sess, nil)
		default:
			err = o.orderStatus(sess)
		}
		if err != nil {
			return fmt.Errorf("tpch: oltp txn %d: %w", i, err)
		}
	}
	return nil
}

// RunTxn executes n transactions, each wrapped in Begin/Commit against
// the transaction manager. NewOrder and Payment run as mutating
// transactions whose page writes are logged; OrderStatus runs read-only.
// When the manager's crash harness fires, RunTxn records the in-flight
// NewOrder key (if any) in Lost and returns txn.ErrCrashed.
func (o *OLTP) RunTxn(tm *txn.Manager, sess *engine.Session, n int) error {
	for i := 0; i < n; i++ {
		var err error
		switch r := o.rng.Intn(100); {
		case r < 45:
			err = o.runNewOrderTxn(tm, sess)
		case r < 90:
			err = o.runPaymentTxn(tm, sess)
		default:
			tx := tm.BeginRead(sess)
			err = o.orderStatus(sess)
			if cerr := tx.Commit(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			if errors.Is(err, txn.ErrCrashed) {
				return err
			}
			return fmt.Errorf("tpch: oltp txn %d: %w", i, err)
		}
	}
	return nil
}

// RunNewOrdersTxn issues n NewOrder transactions back to back. The
// crash-injection phase of the OLTP experiment uses it so the victim
// transaction is always a NewOrder, whose key lands in Lost for the
// recovery verification.
func (o *OLTP) RunNewOrdersTxn(tm *txn.Manager, sess *engine.Session, n int) error {
	for i := 0; i < n; i++ {
		if err := o.runNewOrderTxn(tm, sess); err != nil {
			if errors.Is(err, txn.ErrCrashed) {
				return err
			}
			return fmt.Errorf("tpch: oltp neworder %d: %w", i, err)
		}
	}
	return nil
}

func (o *OLTP) runNewOrderTxn(tm *txn.Manager, sess *engine.Session) error {
	tx, err := tm.Begin(sess)
	if err != nil {
		return err
	}
	key, err := o.newOrder(sess, tx)
	if err != nil {
		_ = tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		if errors.Is(err, txn.ErrCrashed) {
			o.Lost = append(o.Lost, key)
		}
		return err
	}
	o.Committed = append(o.Committed, key)
	return nil
}

func (o *OLTP) runPaymentTxn(tm *txn.Manager, sess *engine.Session) error {
	tx, err := tm.Begin(sess)
	if err != nil {
		return err
	}
	if err := o.payment(sess, tx); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// newOrder appends one order + lineitems and maintains the indexes. Heap
// rows are appended (and their pages made visible) before any index entry
// referencing them is inserted, so a concurrent probe never dereferences
// a page that does not exist yet. It returns the new order key.
func (o *OLTP) newOrder(sess *engine.Session, tx *txn.Txn) (int64, error) {
	inst := sess.Instance()
	key := o.ds.NextOrderKey
	o.ds.NextOrderKey++
	order, lines := genOrder(o.rng, o.rngL, key, o.ds.Customers, o.ds.Parts, o.ds.Suppliers)

	if tx != nil {
		tx.Op(wal.KindHeapInsert)
	}
	ordersApp := o.ordersFile.NewAppender(&sess.Clk, inst.Pool, o.ds.DB.Store.Pages(o.ordersInfo.ID))
	rid, err := ordersApp.Append(order)
	if err != nil {
		return key, err
	}
	if err := ordersApp.Close(); err != nil {
		return key, err
	}
	lineApp := o.lineFile.NewAppender(&sess.Clk, inst.Pool, o.ds.DB.Store.Pages(o.lineInfo.ID))
	lrids := make([]catalog.RID, len(lines))
	for i, l := range lines {
		if lrids[i], err = lineApp.Append(l); err != nil {
			return key, err
		}
	}
	if err := lineApp.Close(); err != nil {
		return key, err
	}

	if tx != nil {
		tx.Op(wal.KindIndexInsert)
	}
	ixOrders := btree.Open(o.ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	if err := ixOrders.Insert(&sess.Clk, btree.Entry{Key: key, RID: rid}, 0); err != nil {
		return key, err
	}
	ixLineOK := btree.Open(o.ds.DB.Cat.MustIndex("idx_lineitem_orderkey").ID, inst.Pool)
	ixLinePK := btree.Open(o.ds.DB.Cat.MustIndex("idx_lineitem_partkey").ID, inst.Pool)
	for i, l := range lines {
		if err := ixLineOK.Insert(&sess.Clk, btree.Entry{Key: key, RID: lrids[i]}, 0); err != nil {
			return key, err
		}
		if err := ixLinePK.Insert(&sess.Clk, btree.Entry{Key: l[1].I, RID: lrids[i]}, 0); err != nil {
			return key, err
		}
	}
	o.NewOrders++
	return key, nil
}

// orderStatus reads one order and its lineitems through the indexes.
func (o *OLTP) orderStatus(sess *engine.Session) error {
	inst := sess.Instance()
	key := 1 + o.rng.Int63n(o.ds.NextOrderKey-1)
	ixOrders := btree.Open(o.ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	rids, err := ixOrders.Lookup(&sess.Clk, key, 0)
	if err != nil {
		return err
	}
	for _, rid := range rids {
		if _, err := o.ordersFile.Fetch(&sess.Clk, inst.Pool, rid, 0); err != nil {
			return err
		}
	}
	ixLineOK := btree.Open(o.ds.DB.Cat.MustIndex("idx_lineitem_orderkey").ID, inst.Pool)
	lrids, err := ixLineOK.Lookup(&sess.Clk, key, 0)
	if err != nil {
		return err
	}
	for _, rid := range lrids {
		if _, err := o.lineFile.Fetch(&sess.Clk, inst.Pool, rid, 0); err != nil {
			return err
		}
	}
	o.OrderStatuses++
	return nil
}

// payment reads a customer and an order, then rewrites the order row.
func (o *OLTP) payment(sess *engine.Session, tx *txn.Txn) error {
	inst := sess.Instance()
	custKey := 1 + o.rng.Int63n(o.ds.Customers)
	ixCust := btree.Open(o.ds.DB.Cat.MustIndex("idx_customer_custkey").ID, inst.Pool)
	crids, err := ixCust.Lookup(&sess.Clk, custKey, 0)
	if err != nil {
		return err
	}
	for _, rid := range crids {
		if _, err := o.custFile.Fetch(&sess.Clk, inst.Pool, rid, 0); err != nil {
			return err
		}
	}

	key := 1 + o.rng.Int63n(o.ds.NextOrderKey-1)
	ixOrders := btree.Open(o.ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	rids, err := ixOrders.Lookup(&sess.Clk, key, 0)
	if err != nil {
		return err
	}
	if tx != nil {
		tx.Op(wal.KindHeapUpdate)
	}
	totalCol := o.ordersInfo.Schema.MustCol("o_totalprice")
	for _, rid := range rids {
		row, err := o.ordersFile.Fetch(&sess.Clk, inst.Pool, rid, 0)
		if err != nil {
			return err
		}
		if row == nil {
			continue
		}
		updated := row.Clone()
		updated[totalCol].F += 1 + o.rng.Float64()*100
		if err := o.ordersFile.Update(&sess.Clk, inst.Pool, rid, updated, 0); err != nil {
			return err
		}
	}
	o.Payments++
	return nil
}

// RecomputeNextOrderKey rescans the orders index after a recovery and
// resets the key allocator past the highest durable order key, discarding
// allocations lost with the crashed instance.
func (ds *Dataset) RecomputeNextOrderKey(sess *engine.Session) error {
	inst := sess.Instance()
	ix := btree.Open(ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	it, err := ix.Seek(&sess.Clk, 0, 1<<62, 0)
	if err != nil {
		return err
	}
	var max int64
	for {
		e, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if e.Key > max {
			max = e.Key
		}
	}
	if max > 0 {
		ds.NextOrderKey = max + 1
	}
	return nil
}
