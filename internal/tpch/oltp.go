package tpch

import (
	"fmt"
	"math/rand"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
)

// OLTP is the paper's stated future work (Section 8: "We are currently
// extending hStorage-DB for OLTP workloads"): a small transaction mix
// over the TPC-H schema exercising exactly the request classes the rules
// govern —
//
//   - NewOrder: insert one order with its lineitems and maintain the
//     indexes (Rule 4 update traffic into the write buffer),
//   - OrderStatus: point-read an order and its lineitems through the
//     orderkey indexes (Rule 2 random traffic),
//   - Payment: read a customer and an order, then rewrite the order's
//     total price in place (random read + update write).
//
// The mix is 45% NewOrder / 45% Payment / 10% OrderStatus, roughly
// TPC-C's write-heavy balance.
type OLTP struct {
	ds   *Dataset
	rng  *rand.Rand
	rngL *rand.Rand

	ordersInfo *catalog.TableInfo
	lineInfo   *catalog.TableInfo
	custInfo   *catalog.TableInfo

	ordersFile *heap.File
	lineFile   *heap.File
	custFile   *heap.File

	// Stats
	NewOrders     int64
	Payments      int64
	OrderStatuses int64
}

// NewOLTP builds a transaction driver over a loaded dataset. Seed varies
// the key sequence per stream.
func (ds *Dataset) NewOLTP(seed int64) *OLTP {
	return &OLTP{
		ds:         ds,
		rng:        rand.New(rand.NewSource(31000 + seed)),
		rngL:       rand.New(rand.NewSource(32000 + seed)),
		ordersInfo: ds.DB.Cat.MustTable("orders"),
		lineInfo:   ds.DB.Cat.MustTable("lineitem"),
		custInfo:   ds.DB.Cat.MustTable("customer"),
		ordersFile: heap.NewFile(ds.DB.Cat.MustTable("orders").ID, ds.DB.Cat.MustTable("orders").Schema, policy.Table),
		lineFile:   heap.NewFile(ds.DB.Cat.MustTable("lineitem").ID, ds.DB.Cat.MustTable("lineitem").Schema, policy.Table),
		custFile:   heap.NewFile(ds.DB.Cat.MustTable("customer").ID, ds.DB.Cat.MustTable("customer").Schema, policy.Table),
	}
}

// Run executes n transactions on the session and returns the number of
// each kind executed.
func (o *OLTP) Run(sess *engine.Session, n int) error {
	for i := 0; i < n; i++ {
		var err error
		switch r := o.rng.Intn(100); {
		case r < 45:
			err = o.newOrder(sess)
		case r < 90:
			err = o.payment(sess)
		default:
			err = o.orderStatus(sess)
		}
		if err != nil {
			return fmt.Errorf("tpch: oltp txn %d: %w", i, err)
		}
	}
	return nil
}

// newOrder appends one order + lineitems and maintains the indexes.
func (o *OLTP) newOrder(sess *engine.Session) error {
	inst := sess.Instance()
	key := o.ds.NextOrderKey
	o.ds.NextOrderKey++
	order, lines := genOrder(o.rng, o.rngL, key, o.ds.Customers, o.ds.Parts, o.ds.Suppliers)

	ordersApp := o.ordersFile.NewAppender(&sess.Clk, inst.Pool, o.ds.DB.Store.Pages(o.ordersInfo.ID))
	rid, err := ordersApp.Append(order)
	if err != nil {
		return err
	}
	if err := ordersApp.Close(); err != nil {
		return err
	}
	ixOrders := btree.Open(o.ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	if err := ixOrders.Insert(&sess.Clk, btree.Entry{Key: key, RID: rid}, 0); err != nil {
		return err
	}

	lineApp := o.lineFile.NewAppender(&sess.Clk, inst.Pool, o.ds.DB.Store.Pages(o.lineInfo.ID))
	ixLineOK := btree.Open(o.ds.DB.Cat.MustIndex("idx_lineitem_orderkey").ID, inst.Pool)
	ixLinePK := btree.Open(o.ds.DB.Cat.MustIndex("idx_lineitem_partkey").ID, inst.Pool)
	for _, l := range lines {
		lrid, err := lineApp.Append(l)
		if err != nil {
			return err
		}
		if err := ixLineOK.Insert(&sess.Clk, btree.Entry{Key: key, RID: lrid}, 0); err != nil {
			return err
		}
		if err := ixLinePK.Insert(&sess.Clk, btree.Entry{Key: l[1].I, RID: lrid}, 0); err != nil {
			return err
		}
	}
	if err := lineApp.Close(); err != nil {
		return err
	}
	o.NewOrders++
	return nil
}

// orderStatus reads one order and its lineitems through the indexes.
func (o *OLTP) orderStatus(sess *engine.Session) error {
	inst := sess.Instance()
	key := 1 + o.rng.Int63n(o.ds.NextOrderKey-1)
	ixOrders := btree.Open(o.ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	rids, err := ixOrders.Lookup(&sess.Clk, key, 0)
	if err != nil {
		return err
	}
	for _, rid := range rids {
		if _, err := o.ordersFile.Fetch(&sess.Clk, inst.Pool, rid, 0); err != nil {
			return err
		}
	}
	ixLineOK := btree.Open(o.ds.DB.Cat.MustIndex("idx_lineitem_orderkey").ID, inst.Pool)
	lrids, err := ixLineOK.Lookup(&sess.Clk, key, 0)
	if err != nil {
		return err
	}
	for _, rid := range lrids {
		if _, err := o.lineFile.Fetch(&sess.Clk, inst.Pool, rid, 0); err != nil {
			return err
		}
	}
	o.OrderStatuses++
	return nil
}

// payment reads a customer and an order, then rewrites the order row.
func (o *OLTP) payment(sess *engine.Session) error {
	inst := sess.Instance()
	custKey := 1 + o.rng.Int63n(o.ds.Customers)
	ixCust := btree.Open(o.ds.DB.Cat.MustIndex("idx_customer_custkey").ID, inst.Pool)
	crids, err := ixCust.Lookup(&sess.Clk, custKey, 0)
	if err != nil {
		return err
	}
	for _, rid := range crids {
		if _, err := o.custFile.Fetch(&sess.Clk, inst.Pool, rid, 0); err != nil {
			return err
		}
	}

	key := 1 + o.rng.Int63n(o.ds.NextOrderKey-1)
	ixOrders := btree.Open(o.ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	rids, err := ixOrders.Lookup(&sess.Clk, key, 0)
	if err != nil {
		return err
	}
	totalCol := o.ordersInfo.Schema.MustCol("o_totalprice")
	for _, rid := range rids {
		row, err := o.ordersFile.Fetch(&sess.Clk, inst.Pool, rid, 0)
		if err != nil {
			return err
		}
		if row == nil {
			continue
		}
		updated := row.Clone()
		updated[totalCol].F += 1 + o.rng.Float64()*100
		if err := o.ordersFile.Update(&sess.Clk, inst.Pool, rid, updated, 0); err != nil {
			return err
		}
	}
	o.Payments++
	return nil
}
