package tpch

import (
	"fmt"
	"math/rand"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/hybrid"
)

// Cardinalities per the TPC-H specification, scaled by SF.
func cardinalities(sf float64) (suppliers, customers, parts, orders int64) {
	suppliers = max64(10, int64(10000*sf))
	customers = max64(30, int64(150000*sf))
	parts = max64(40, int64(200000*sf))
	orders = max64(100, int64(1500000*sf))
	return
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Load generates and loads a TPC-H database at scale factor sf and builds
// the nine indexes of Table 3. Loading runs through a scratch HDD-only
// instance; its timing and statistics are irrelevant and discarded.
func Load(sf float64) (*Dataset, error) {
	db := engine.NewDatabase()
	ds := &Dataset{DB: db, SF: sf}

	for _, name := range TableNames() {
		if _, err := db.CreateTable(name, Schemas()[name]); err != nil {
			return nil, err
		}
	}

	// Scratch loader instance: big buffer pool to make loading cheap.
	inst, err := db.NewInstance(engine.InstanceConfig{
		Storage:         hybrid.Config{Mode: hybrid.HDDOnly},
		BufferPoolPages: 4096,
	})
	if err != nil {
		return nil, err
	}

	if err := ds.loadRows(inst); err != nil {
		return nil, err
	}
	for _, ix := range Indexes() {
		if _, err := inst.BuildIndex(ix.Name, ix.Table, ix.Column); err != nil {
			return nil, fmt.Errorf("tpch: building %s: %w", ix.Name, err)
		}
	}
	return ds, nil
}

// loadRows fills all eight tables deterministically.
func (ds *Dataset) loadRows(inst *engine.Instance) error {
	suppliers, customers, parts, orders := cardinalities(ds.SF)
	ds.Suppliers, ds.Customers, ds.Parts, ds.Orders = suppliers, customers, parts, orders

	// region
	if err := load(inst, "region", func(add func(catalog.Tuple) error) error {
		for i, name := range regionNames {
			if err := add(catalog.Tuple{
				catalog.IntDatum(int64(i)),
				catalog.StringDatum(name),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// nation
	if err := load(inst, "nation", func(add func(catalog.Tuple) error) error {
		for i, name := range nationNames {
			if err := add(catalog.Tuple{
				catalog.IntDatum(int64(i)),
				catalog.StringDatum(name),
				catalog.IntDatum(nationRegion[i]),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// supplier
	rng := rand.New(rand.NewSource(7001))
	if err := load(inst, "supplier", func(add func(catalog.Tuple) error) error {
		for k := int64(1); k <= suppliers; k++ {
			if err := add(catalog.Tuple{
				catalog.IntDatum(k),
				catalog.StringDatum(fmt.Sprintf("Supplier#%09d", k)),
				catalog.IntDatum(rng.Int63n(25)),
				catalog.FloatDatum(-999.99 + rng.Float64()*10998.98),
				catalog.StringDatum(fmt.Sprintf("addr-%d", rng.Int63n(1_000_000))),
				catalog.StringDatum(fmt.Sprintf("%02d-%07d", 10+rng.Int63n(25), rng.Int63n(10_000_000))),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// customer
	rng = rand.New(rand.NewSource(7002))
	if err := load(inst, "customer", func(add func(catalog.Tuple) error) error {
		for k := int64(1); k <= customers; k++ {
			nation := rng.Int63n(25)
			if err := add(catalog.Tuple{
				catalog.IntDatum(k),
				catalog.StringDatum(fmt.Sprintf("Customer#%09d", k)),
				catalog.IntDatum(nation),
				catalog.StringDatum(segments[rng.Intn(len(segments))]),
				catalog.FloatDatum(-999.99 + rng.Float64()*10998.98),
				catalog.StringDatum(fmt.Sprintf("%02d-%07d", 10+nation, rng.Int63n(10_000_000))),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// part
	rng = rand.New(rand.NewSource(7003))
	if err := load(inst, "part", func(add func(catalog.Tuple) error) error {
		for k := int64(1); k <= parts; k++ {
			name := nameWords[rng.Intn(len(nameWords))] + " " + nameWords[rng.Intn(len(nameWords))] + " " +
				nameWords[rng.Intn(len(nameWords))]
			ptype := typeSyl1[rng.Intn(len(typeSyl1))] + " " + typeSyl2[rng.Intn(len(typeSyl2))] + " " +
				typeSyl3[rng.Intn(len(typeSyl3))]
			if err := add(catalog.Tuple{
				catalog.IntDatum(k),
				catalog.StringDatum(name),
				catalog.StringDatum(fmt.Sprintf("Manufacturer#%d", 1+rng.Intn(5))),
				catalog.StringDatum(brands[rng.Intn(len(brands))]),
				catalog.StringDatum(ptype),
				catalog.IntDatum(1 + rng.Int63n(50)),
				catalog.StringDatum(containers[rng.Intn(len(containers))]),
				catalog.FloatDatum(900 + float64(k%1000)/10),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// partsupp: 4 suppliers per part.
	rng = rand.New(rand.NewSource(7004))
	if err := load(inst, "partsupp", func(add func(catalog.Tuple) error) error {
		for k := int64(1); k <= parts; k++ {
			for s := 0; s < 4; s++ {
				supp := (k+int64(s)*(suppliers/4+1))%suppliers + 1
				if err := add(catalog.Tuple{
					catalog.IntDatum(k),
					catalog.IntDatum(supp),
					catalog.IntDatum(1 + rng.Int63n(9999)),
					catalog.FloatDatum(1 + rng.Float64()*999),
				}); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// orders + lineitem together (lineitems belong to their order).
	//
	// Order keys are assigned through a permutation of [1, orders], the
	// way dbgen scrambles o_orderkey: the heap position of an order (and
	// of its lineitems) is then uncorrelated with its key, so index
	// probes by orderkey generate genuinely random storage traffic
	// rather than a disguised sequential pass.
	rngO := rand.New(rand.NewSource(7005))
	rngL := rand.New(rand.NewSource(7006))
	perm := rand.New(rand.NewSource(7007)).Perm(int(orders))
	ordersLoader, err := inst.NewLoader("orders")
	if err != nil {
		return err
	}
	lineLoader, err := inst.NewLoader("lineitem")
	if err != nil {
		return err
	}
	var lineitems int64
	for k := int64(1); k <= orders; k++ {
		o, lines := genOrder(rngO, rngL, int64(perm[k-1])+1, customers, parts, suppliers)
		if _, err := ordersLoader.Add(o); err != nil {
			return err
		}
		for _, l := range lines {
			if _, err := lineLoader.Add(l); err != nil {
				return err
			}
			lineitems++
		}
	}
	if err := ordersLoader.Close(); err != nil {
		return err
	}
	if err := lineLoader.Close(); err != nil {
		return err
	}
	ds.Lineitems = lineitems
	ds.NextOrderKey = orders + 1
	return nil
}

// genOrder produces one order row plus its 1..7 lineitems.
func genOrder(rngO, rngL *rand.Rand, key, customers, parts, suppliers int64) (catalog.Tuple, []catalog.Tuple) {
	odate := StartDate + rngO.Int63n(EndDate-StartDate-121)
	nlines := 1 + rngL.Int63n(7)
	var total float64
	lines := make([]catalog.Tuple, 0, nlines)
	status := "O"
	finished := 0
	for ln := int64(1); ln <= nlines; ln++ {
		qty := float64(1 + rngL.Int63n(50))
		price := 901.0 + float64(rngL.Int63n(100000))/100 // ~extendedprice scale
		disc := float64(rngL.Int63n(11)) / 100
		tax := float64(rngL.Int63n(9)) / 100
		ship := odate + 1 + rngL.Int63n(121)
		commit := odate + 30 + rngL.Int63n(61)
		receipt := ship + 1 + rngL.Int63n(30)
		rf := "N"
		ls := "O"
		if receipt <= Day(1995, 6, 17) {
			ls = "F"
			finished++
			if rngL.Intn(2) == 0 {
				rf = "R"
			} else {
				rf = "A"
			}
		}
		total += price * qty * (1 - disc)
		lines = append(lines, catalog.Tuple{
			catalog.IntDatum(key),
			catalog.IntDatum(1 + rngL.Int63n(parts)),
			catalog.IntDatum(1 + rngL.Int63n(suppliers)),
			catalog.IntDatum(ln),
			catalog.FloatDatum(qty),
			catalog.FloatDatum(price * qty),
			catalog.FloatDatum(disc),
			catalog.FloatDatum(tax),
			catalog.StringDatum(rf),
			catalog.StringDatum(ls),
			catalog.IntDatum(ship),
			catalog.IntDatum(commit),
			catalog.IntDatum(receipt),
			catalog.StringDatum(shipmodes[rngL.Intn(len(shipmodes))]),
		})
	}
	if finished == len(lines) {
		status = "F"
	} else if finished > 0 {
		status = "P"
	}
	order := catalog.Tuple{
		catalog.IntDatum(key),
		catalog.IntDatum(1 + rngO.Int63n(customers)),
		catalog.StringDatum(status),
		catalog.FloatDatum(total),
		catalog.IntDatum(odate),
		catalog.StringDatum(priorities[rngO.Intn(len(priorities))]),
		catalog.IntDatum(0),
	}
	return order, lines
}

// load runs fill against a fresh loader for the table.
func load(inst *engine.Instance, table string, fill func(add func(catalog.Tuple) error) error) error {
	l, err := inst.NewLoader(table)
	if err != nil {
		return err
	}
	if err := fill(func(t catalog.Tuple) error {
		_, err := l.Add(t)
		return err
	}); err != nil {
		return err
	}
	return l.Close()
}
