package tpch

import (
	"testing"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/hybrid"
)

// TestAllQueriesRun loads a tiny dataset and runs every query under the
// hStorage configuration, checking that execution completes and the
// request-type counters move.
func TestAllQueriesRun(t *testing.T) {
	ds, err := Load(0.002)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	inst, err := ds.DB.NewInstance(engine.InstanceConfig{
		Storage:         hybrid.Config{Mode: hybrid.HStorage, CacheBlocks: 1024},
		BufferPoolPages: 128,
		WorkMem:         500,
	})
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	for q := 1; q <= 22; q++ {
		sess := inst.NewSession()
		op, err := ds.Query(q, 0)
		if err != nil {
			t.Fatalf("Q%d build: %v", q, err)
		}
		n, elapsed, err := sess.ExecuteDiscard(op)
		if err != nil {
			t.Fatalf("Q%d run: %v", q, err)
		}
		t.Logf("Q%-2d rows=%-6d simulated=%v", q, n, elapsed)
	}

	// RF pair.
	sess := inst.NewSession()
	ins, err := ds.RF1(sess)
	if err != nil {
		t.Fatalf("RF1: %v", err)
	}
	if ins == 0 {
		t.Fatal("RF1 inserted nothing")
	}
	del, err := ds.RF2(sess)
	if err != nil {
		t.Fatalf("RF2: %v", err)
	}
	if del != ins {
		t.Fatalf("RF2 deleted %d, RF1 inserted %d", del, ins)
	}
}
