package tpch

import (
	"testing"
	"time"

	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/engine/wal"
	"hstoragedb/internal/hybrid"
)

// TestRunOLTPWorkersFeedsRule5 runs the multi-worker driver and checks
// (a) every worker's transactions complete and are visible in the
// manager's counters, and (b) the Rule 5 concurrency registry sees the
// mutating streams' random-access footprints while they run — the
// registry used to reflect read streams only.
func TestRunOLTPWorkersFeedsRule5(t *testing.T) {
	ds := loadSmall(t)
	inst := smallInstance(t, ds, hybrid.HStorage)
	sess := inst.NewSession()
	log, err := wal.New(&sess.Clk, inst.Mgr, wal.Config{SegmentPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	tm := txn.NewManager(inst, log)
	if err := tm.Checkpoint(sess); err != nil {
		t.Fatal(err)
	}

	reg := inst.Mgr.Registry()
	if reg.ActiveQueries() != 0 {
		t.Fatalf("registry not empty before the run: %d", reg.ActiveQueries())
	}
	seen := make(chan int, 1)
	go func() {
		// Sample the registry while the workers run; the footprints are
		// registered for each worker's whole run, so any sample during
		// it observes them.
		max := 0
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if n := reg.ActiveQueries(); n > max {
				max = n
				if max >= 2 {
					break
				}
			}
			time.Sleep(50 * time.Microsecond)
		}
		seen <- max
	}()

	res, err := ds.RunOLTPWorkers(tm, inst, 4, 30, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Txns != 4*30 {
		t.Fatalf("txns=%d want %d", res.Txns, 4*30)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if tm.Commits() == 0 {
		t.Fatal("no commits recorded")
	}
	if got := <-seen; got < 2 {
		t.Fatalf("Rule 5 registry saw at most %d concurrent mutating streams, want >= 2", got)
	}
	if reg.ActiveQueries() != 0 {
		t.Fatalf("footprints leaked after the run: %d", reg.ActiveQueries())
	}
	if n := inst.Pool.PinnedFrames(); n != 0 {
		t.Fatalf("%d pinned frames leaked", n)
	}
}
