package tpch

import (
	"testing"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/exec"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/hybrid"
)

func loadSmall(t testing.TB) *Dataset {
	t.Helper()
	ds, err := Load(0.002)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return ds
}

func smallInstance(t testing.TB, ds *Dataset, mode hybrid.Mode) *engine.Instance {
	t.Helper()
	inst, err := ds.DB.NewInstance(engine.InstanceConfig{
		Storage:         hybrid.Config{Mode: mode, CacheBlocks: 1024},
		BufferPoolPages: 64,
		WorkMem:         500,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSchemaAndIndexInventory(t *testing.T) {
	if len(Schemas()) != 8 {
		t.Fatalf("%d schemas, want 8 TPC-H tables", len(Schemas()))
	}
	// Table 3: exactly nine indexes with the paper's columns.
	ix := Indexes()
	if len(ix) != 9 {
		t.Fatalf("%d indexes, want 9 (Table 3)", len(ix))
	}
	wantCols := map[string]string{
		"lineitem": "l_partkey", // first entry of Table 3
		"orders":   "o_orderkey",
		"part":     "p_partkey",
	}
	for table, col := range wantCols {
		found := false
		for _, i := range ix {
			if i.Table == table && i.Column == col {
				found = true
			}
		}
		if !found {
			t.Errorf("missing index %s(%s)", table, col)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := loadSmall(t)
	b := loadSmall(t)
	if a.Orders != b.Orders || a.Lineitems != b.Lineitems {
		t.Fatalf("cardinalities differ: %d/%d vs %d/%d", a.Orders, a.Lineitems, b.Orders, b.Lineitems)
	}
	if a.DB.Store.TotalPages() != b.DB.Store.TotalPages() {
		t.Fatalf("page counts differ: %d vs %d", a.DB.Store.TotalPages(), b.DB.Store.TotalPages())
	}
}

func TestCardinalityRatios(t *testing.T) {
	ds := loadSmall(t)
	if ds.Lineitems < 3*ds.Orders || ds.Lineitems > 7*ds.Orders {
		t.Fatalf("lineitem/orders ratio off: %d/%d", ds.Lineitems, ds.Orders)
	}
	cat := ds.DB.Cat
	if cat.MustTable("region").Rows != 5 || cat.MustTable("nation").Rows != 25 {
		t.Fatal("fixed tables wrong")
	}
}

// TestQ9Priorities verifies the headline of Table 5: Q9's random requests
// to supplier carry priority 2 and to orders priority 3.
func TestQ9Priorities(t *testing.T) {
	ds := loadSmall(t)
	op := ds.MustQuery(9, 0)
	exec.AssignLevels(op)
	info := exec.ExtractQueryInfo(op)
	space := dss.DefaultPolicySpace()

	supplier := ds.DB.Cat.MustTable("supplier").ID
	orders := ds.DB.Cat.MustTable("orders").ID
	min := func(ls []int) int {
		m := ls[0]
		for _, l := range ls {
			if l < m {
				m = l
			}
		}
		return m
	}
	sPrio := policy.RandomPriority(space, min(info.Levels[supplier]), info.LLow, info.LHigh)
	oPrio := policy.RandomPriority(space, min(info.Levels[orders]), info.LLow, info.LHigh)
	if sPrio != 2 {
		t.Errorf("supplier priority %v, want 2", sPrio)
	}
	if oPrio != 3 {
		t.Errorf("orders priority %v, want 3", oPrio)
	}
	// lineitem and part are only scanned sequentially in Q9's plan.
	lineitem := ds.DB.Cat.MustTable("lineitem").ID
	if len(info.Levels[lineitem]) != 0 {
		t.Error("lineitem randomly accessed in Q9; Figure 7 has it sequential")
	}
}

// TestQ21Priorities verifies Table 6's setup: orders at priority 2,
// lineitem (via its index probes) at priority 3.
func TestQ21Priorities(t *testing.T) {
	ds := loadSmall(t)
	op := ds.MustQuery(21, 0)
	exec.AssignLevels(op)
	info := exec.ExtractQueryInfo(op)
	space := dss.DefaultPolicySpace()

	orders := ds.DB.Cat.MustTable("orders").ID
	lineitem := ds.DB.Cat.MustTable("lineitem").ID
	min := func(ls []int) int {
		m := ls[0]
		for _, l := range ls {
			if l < m {
				m = l
			}
		}
		return m
	}
	if got := policy.RandomPriority(space, min(info.Levels[orders]), info.LLow, info.LHigh); got != 2 {
		t.Errorf("orders priority %v, want 2", got)
	}
	if got := policy.RandomPriority(space, min(info.Levels[lineitem]), info.LLow, info.LHigh); got != 3 {
		t.Errorf("lineitem priority %v, want 3", got)
	}
}

// TestQ18GeneratesTemp verifies Figure 10 / Table 7's setup: Q18 produces
// temporary-data traffic and no random traffic.
func TestQ18GeneratesTemp(t *testing.T) {
	ds := loadSmall(t)
	inst := smallInstance(t, ds, hybrid.HStorage)
	sess := inst.NewSession()
	if _, _, err := sess.ExecuteDiscard(ds.MustQuery(18, 0)); err != nil {
		t.Fatal(err)
	}
	ts := inst.Mgr.TypeStats()
	if ts[policy.TempRequest].Blocks == 0 {
		t.Fatal("Q18 produced no temp traffic")
	}
	if ts[policy.RandomRequest].Blocks != 0 {
		t.Fatalf("Q18 produced %d random blocks; Figure 10's plan has none",
			ts[policy.RandomRequest].Blocks)
	}
}

// TestQ1Sequential verifies Figure 4's Q1 bar: requests are (almost)
// entirely sequential.
func TestQ1Sequential(t *testing.T) {
	ds := loadSmall(t)
	inst := smallInstance(t, ds, hybrid.HStorage)
	sess := inst.NewSession()
	if _, _, err := sess.ExecuteDiscard(ds.MustQuery(1, 0)); err != nil {
		t.Fatal(err)
	}
	ts := inst.Mgr.TypeStats()
	var total int64
	for _, s := range ts {
		total += s.Blocks
	}
	seq := ts[policy.SequentialRequest].Blocks
	if float64(seq)/float64(total) < 0.95 {
		t.Fatalf("Q1 sequential fraction %.2f, want >= 0.95", float64(seq)/float64(total))
	}
}

func TestQueryDeterministicResults(t *testing.T) {
	ds := loadSmall(t)
	inst := smallInstance(t, ds, hybrid.HDDOnly)
	for _, q := range []int{1, 6, 9} {
		sess1 := inst.NewSession()
		r1, err := sess1.Execute(ds.MustQuery(q, 0))
		if err != nil {
			t.Fatal(err)
		}
		sess2 := inst.NewSession()
		r2, err := sess2.Execute(ds.MustQuery(q, 0))
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("Q%d row counts differ across runs: %d vs %d", q, len(r1.Rows), len(r2.Rows))
		}
	}
}

func TestSeedVariesParameters(t *testing.T) {
	ds := loadSmall(t)
	inst := smallInstance(t, ds, hybrid.HDDOnly)
	sess := inst.NewSession()
	// Q6 with different seeds should (usually) aggregate different rows.
	n1, _, err := sess.ExecuteDiscard(ds.MustQuery(6, 0))
	if err != nil {
		t.Fatal(err)
	}
	_ = n1
	// Just assert different seeds build runnable plans.
	for seed := int64(1); seed <= 3; seed++ {
		if _, _, err := sess.ExecuteDiscard(ds.MustQuery(6, seed)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRF1RF2RestoreRowCounts(t *testing.T) {
	ds := loadSmall(t)
	inst := smallInstance(t, ds, hybrid.HStorage)
	sess := inst.NewSession()

	countOrders := func() int64 {
		s := inst.NewSession()
		n, _, err := s.ExecuteDiscard(&exec.SeqScan{Table: exec.NewTableHandle(ds.DB.Cat.MustTable("orders"))})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	before := countOrders()
	ins, err := ds.RF1(sess)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOrders(); got != before+int64(ins) {
		t.Fatalf("after RF1: %d orders, want %d", got, before+int64(ins))
	}
	if ds.PendingRF() != ins {
		t.Fatalf("pending %d, want %d", ds.PendingRF(), ins)
	}
	del, err := ds.RF2(sess)
	if err != nil {
		t.Fatal(err)
	}
	if del != ins {
		t.Fatalf("RF2 deleted %d of %d", del, ins)
	}
	if got := countOrders(); got != before {
		t.Fatalf("after RF2: %d orders, want %d", got, before)
	}
	if ds.PendingRF() != 0 {
		t.Fatal("pending RF orders remain")
	}
}

// TestRFUpdatesAreWriteBuffered verifies Rule 4 end to end: RF1 traffic
// reaches storage in the write-buffer class.
func TestRFUpdatesAreWriteBuffered(t *testing.T) {
	ds := loadSmall(t)
	inst := smallInstance(t, ds, hybrid.HStorage)
	sess := inst.NewSession()
	inst.ResetStats()
	if _, err := ds.RF1(sess); err != nil {
		t.Fatal(err)
	}
	if err := inst.Pool.FlushAll(&sess.Clk); err != nil {
		t.Fatal(err)
	}
	snap := inst.Sys.Stats()
	if snap.Class(dss.ClassWriteBuffer).WriteBlocks == 0 {
		t.Fatal("RF1 produced no write-buffer traffic")
	}
	// Clean up for other tests' sanity.
	if _, err := ds.RF2(sess); err != nil {
		t.Fatal(err)
	}
}

func TestStreamOrders(t *testing.T) {
	if len(PowerOrder()) != 22 {
		t.Fatalf("power order has %d entries", len(PowerOrder()))
	}
	seen := map[int]bool{}
	for _, q := range PowerOrder() {
		if q < 1 || q > 22 || seen[q] {
			t.Fatalf("bad power order: %v", PowerOrder())
		}
		seen[q] = true
	}
	for i, stream := range ThroughputOrders(5) {
		seen := map[int]bool{}
		for _, q := range stream {
			if q < 1 || q > 22 || seen[q] {
				t.Fatalf("stream %d invalid: %v", i, stream)
			}
			seen[q] = true
		}
		if len(stream) != 22 {
			t.Fatalf("stream %d has %d queries", i, len(stream))
		}
	}
	if len(ThroughputOrders(99)) != 5 {
		t.Fatal("ThroughputOrders should cap at available permutations")
	}
}

func TestDayConversion(t *testing.T) {
	if Day(1970, 1, 1) != 0 {
		t.Fatalf("epoch day %d", Day(1970, 1, 1))
	}
	if Day(1970, 1, 2) != 1 {
		t.Fatalf("day 2 = %d", Day(1970, 1, 2))
	}
	if EndDate <= StartDate {
		t.Fatal("date domain inverted")
	}
}

// instCfg builds an instance config around a storage config with the
// small-test defaults.
func instCfg(storage hybrid.Config) engine.InstanceConfig {
	return engine.InstanceConfig{
		Storage:         storage,
		BufferPoolPages: 64,
		WorkMem:         500,
	}
}
