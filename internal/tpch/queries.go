package tpch

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/exec"
)

// Query builds the plan for TPC-H query n (1..22). The seed varies the
// substitution parameters the way different query streams do in the
// power/throughput tests; seed 0 yields the validation parameters.
//
// Plans approximate the PostgreSQL shapes the paper reports; Q9, Q21 and
// Q18 mirror Figures 7, 8 and 10 (the queries whose cache behaviour the
// evaluation dissects).
func (ds *Dataset) Query(n int, seed int64) (exec.Operator, error) {
	rng := rand.New(rand.NewSource(seed*1000 + int64(n)))
	switch n {
	case 1:
		return ds.q1(rng), nil
	case 2:
		return ds.q2(rng), nil
	case 3:
		return ds.q3(rng), nil
	case 4:
		return ds.q4(rng), nil
	case 5:
		return ds.q5(rng), nil
	case 6:
		return ds.q6(rng), nil
	case 7:
		return ds.q7(rng), nil
	case 8:
		return ds.q8(rng), nil
	case 9:
		return ds.q9(rng), nil
	case 10:
		return ds.q10(rng), nil
	case 11:
		return ds.q11(rng), nil
	case 12:
		return ds.q12(rng), nil
	case 13:
		return ds.q13(rng), nil
	case 14:
		return ds.q14(rng), nil
	case 15:
		return ds.q15(rng), nil
	case 16:
		return ds.q16(rng), nil
	case 17:
		return ds.q17(rng), nil
	case 18:
		return ds.q18(rng), nil
	case 19:
		return ds.q19(rng), nil
	case 20:
		return ds.q20(rng), nil
	case 21:
		return ds.q21(rng), nil
	case 22:
		return ds.q22(rng), nil
	}
	return nil, fmt.Errorf("tpch: no query %d", n)
}

// MustQuery is Query but panics on an invalid number.
func (ds *Dataset) MustQuery(n int, seed int64) exec.Operator {
	op, err := ds.Query(n, seed)
	if err != nil {
		panic(err)
	}
	return op
}

// ---- construction helpers ----

func (ds *Dataset) handle(name string) *exec.TableHandle {
	return exec.NewTableHandle(ds.DB.Cat.MustTable(name))
}

func (ds *Dataset) colIdx(table, column string) int {
	return ds.DB.Cat.MustTable(table).Schema.MustCol(column)
}

func (ds *Dataset) seq(table string, pred func(catalog.Tuple) bool) *exec.SeqScan {
	return &exec.SeqScan{Table: ds.handle(table), Pred: pred}
}

func (ds *Dataset) probe(index, table string, pred func(catalog.Tuple) bool) *exec.IndexProbe {
	return &exec.IndexProbe{
		Index: ds.DB.Cat.MustIndex(index),
		Table: ds.handle(table),
		Pred:  pred,
	}
}

// hj builds a hash join whose build side is wrapped in the explicit
// blocking Hash operator of the paper's plan trees.
func hj(build, probeSide exec.Operator, bk, pk func(catalog.Tuple) int64) *exec.HashJoin {
	return &exec.HashJoin{
		Build:    &exec.Hash{Child: build},
		Probe:    probeSide,
		BuildKey: bk,
		ProbeKey: pk,
	}
}

func ic(i int) func(catalog.Tuple) int64 {
	return func(t catalog.Tuple) int64 { return t[i].I }
}

// keep projects the listed columns.
func keep(child exec.Operator, idx ...int) *exec.Project {
	return &exec.Project{Child: child, Fn: func(t catalog.Tuple) catalog.Tuple {
		out := make(catalog.Tuple, len(idx))
		for i, j := range idx {
			out[i] = t[j]
		}
		return out
	}}
}

func year(day int64) int64 { return 1970 + day/365 } // close enough for grouping

// ---- the 22 queries ----

// q1: pricing summary report. Pure sequential scan + aggregation.
func (ds *Dataset) q1(rng *rand.Rand) exec.Operator {
	lq := ds.colIdx("lineitem", "l_quantity")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	ld := ds.colIdx("lineitem", "l_discount")
	lt := ds.colIdx("lineitem", "l_tax")
	lrf := ds.colIdx("lineitem", "l_returnflag")
	lls := ds.colIdx("lineitem", "l_linestatus")
	lsd := ds.colIdx("lineitem", "l_shipdate")
	cutoff := Day(1998, 12, 1) - int64(60+rng.Intn(60))

	scan := ds.seq("lineitem", func(t catalog.Tuple) bool { return t[lsd].I <= cutoff })
	agg := &exec.HashAgg{
		Child:    scan,
		GroupKey: func(t catalog.Tuple) string { return t[lrf].S + "|" + t[lls].S },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{
				t[lrf], t[lls],
				catalog.FloatDatum(t[lq].F),
				catalog.FloatDatum(t[lp].F),
				catalog.FloatDatum(t[lp].F * (1 - t[ld].F)),
				catalog.FloatDatum(t[lp].F * (1 - t[ld].F) * (1 + t[lt].F)),
				catalog.IntDatum(1),
			}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[2].F += t[lq].F
			acc[3].F += t[lp].F
			acc[4].F += t[lp].F * (1 - t[ld].F)
			acc[5].F += t[lp].F * (1 - t[ld].F) * (1 + t[lt].F)
			acc[6].I++
			return acc
		},
	}
	return &exec.Sort{Child: agg, Less: func(a, b catalog.Tuple) bool {
		if a[0].S != b[0].S {
			return a[0].S < b[0].S
		}
		return a[1].S < b[1].S
	}}
}

// q2: minimum cost supplier. Random probes into partsupp and supplier.
func (ds *Dataset) q2(rng *rand.Rand) exec.Operator {
	psz := ds.colIdx("part", "p_size")
	pty := ds.colIdx("part", "p_type")
	pk := ds.colIdx("part", "p_partkey")
	size := int64(1 + rng.Intn(50))
	suffix := typeSyl3[rng.Intn(len(typeSyl3))]
	region := int64(rng.Intn(5))

	part := ds.seq("part", func(t catalog.Tuple) bool {
		return t[psz].I == size && strings.HasSuffix(t[pty].S, suffix)
	})
	// part ⋈ partsupp (random).
	nlPS := &exec.NestLoop{
		Outer:    part,
		Probe:    ds.probe("idx_partsupp_partkey", "partsupp", nil),
		OuterKey: ic(pk),
	}
	// ⋈ supplier (random). Combined tuple: part(8) + partsupp(4) + supplier(6).
	nlS := &exec.NestLoop{
		Outer:    nlPS,
		Probe:    ds.probe("idx_supplier_suppkey", "supplier", nil),
		OuterKey: func(t catalog.Tuple) int64 { return t[8+1].I }, // ps_suppkey
	}
	// Region restriction via nation hash.
	nk := ds.colIdx("nation", "n_nationkey")
	nr := ds.colIdx("nation", "n_regionkey")
	nation := ds.seq("nation", func(t catalog.Tuple) bool { return t[nr].I == region })
	join := hj(nation, nlS,
		ic(nk),
		func(t catalog.Tuple) int64 { return t[8+4+2].I }, // s_nationkey
	)
	// Min supply cost per part, then the "best supplier" rows.
	agg := &exec.HashAgg{
		Child:    join,
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[3+pk].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			// partkey, min cost, supplier acctbal, supplier name
			return catalog.Tuple{t[3+pk], t[3+8+3], t[3+8+4+3], t[3+8+4+1]}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			if t[3+8+3].F < acc[1].F {
				acc[1] = t[3+8+3]
				acc[2] = t[3+8+4+3]
				acc[3] = t[3+8+4+1]
			}
			return acc
		},
	}
	return &exec.TopN{Child: agg, N: 100, Less: func(a, b catalog.Tuple) bool { return a[2].F > b[2].F }}
}

// q3: shipping priority. Hash joins + random lineitem probes.
func (ds *Dataset) q3(rng *rand.Rand) exec.Operator {
	cseg := ds.colIdx("customer", "c_mktsegment")
	ck := ds.colIdx("customer", "c_custkey")
	ok := ds.colIdx("orders", "o_orderkey")
	oc := ds.colIdx("orders", "o_custkey")
	od := ds.colIdx("orders", "o_orderdate")
	segment := segments[rng.Intn(len(segments))]
	date := Day(1995, 3, 1) + int64(rng.Intn(31))

	cust := ds.seq("customer", func(t catalog.Tuple) bool { return t[cseg].S == segment })
	ords := ds.seq("orders", func(t catalog.Tuple) bool { return t[od].I < date })
	co := hj(keep(cust, ck), ords, ic(0), ic(oc)) // [custkey | orders...]
	lsd := ds.colIdx("lineitem", "l_shipdate")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	ld := ds.colIdx("lineitem", "l_discount")
	nl := &exec.NestLoop{
		Outer:    co,
		Probe:    ds.probe("idx_lineitem_orderkey", "lineitem", func(t catalog.Tuple) bool { return t[lsd].I > date }),
		OuterKey: func(t catalog.Tuple) int64 { return t[1+ok].I },
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{o[1+ok], o[1+od], catalog.FloatDatum(i[lp].F * (1 - i[ld].F))}
		},
	}
	agg := &exec.HashAgg{
		Child:    nl,
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[0].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return t.Clone() },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[2].F += t[2].F
			return acc
		},
	}
	return &exec.TopN{Child: agg, N: 10, Less: func(a, b catalog.Tuple) bool { return a[2].F > b[2].F }}
}

// q4: order priority checking. Semi join via random lineitem probes.
func (ds *Dataset) q4(rng *rand.Rand) exec.Operator {
	od := ds.colIdx("orders", "o_orderdate")
	ok := ds.colIdx("orders", "o_orderkey")
	op := ds.colIdx("orders", "o_orderpriority")
	lcd := ds.colIdx("lineitem", "l_commitdate")
	lrd := ds.colIdx("lineitem", "l_receiptdate")
	start := Day(1993, 1, 1) + int64(rng.Intn(20))*91
	end := start + 91

	ords := ds.seq("orders", func(t catalog.Tuple) bool { return t[od].I >= start && t[od].I < end })
	semi := &exec.NestLoop{
		Outer:    ords,
		Probe:    ds.probe("idx_lineitem_orderkey", "lineitem", func(t catalog.Tuple) bool { return t[lcd].I < t[lrd].I }),
		OuterKey: ic(ok),
		Semi:     true,
		Combine:  func(o, i catalog.Tuple) catalog.Tuple { return o },
	}
	agg := &exec.HashAgg{
		Child:    semi,
		GroupKey: func(t catalog.Tuple) string { return t[op].S },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return catalog.Tuple{t[op], catalog.IntDatum(1)} },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[1].I++
			return acc
		},
	}
	return &exec.Sort{Child: agg, Less: func(a, b catalog.Tuple) bool { return a[0].S < b[0].S }}
}

// q5: local supplier volume. Hash-join pipeline over sequential scans —
// one of the paper's sequential-dominated queries (Figure 5).
func (ds *Dataset) q5(rng *rand.Rand) exec.Operator {
	region := int64(rng.Intn(5))
	y := 1993 + int64(rng.Intn(5))
	start, end := Day(int(y), 1, 1), Day(int(y)+1, 1, 1)

	nk := ds.colIdx("nation", "n_nationkey")
	nn := ds.colIdx("nation", "n_name")
	nr := ds.colIdx("nation", "n_regionkey")
	nation := keep(ds.seq("nation", func(t catalog.Tuple) bool { return t[nr].I == region }), nk, nn)

	ck := ds.colIdx("customer", "c_custkey")
	cn := ds.colIdx("customer", "c_nationkey")
	// nation ⋈ customer → [nationkey, nationname, custkey]
	nc := hj(nation, keep(ds.seq("customer", nil), ck, cn),
		ic(0),
		func(t catalog.Tuple) int64 { return t[1].I },
	)
	ncp := &exec.Project{Child: nc, Fn: func(t catalog.Tuple) catalog.Tuple {
		return catalog.Tuple{t[0], t[1], t[2]}
	}}

	od := ds.colIdx("orders", "o_orderdate")
	oc := ds.colIdx("orders", "o_custkey")
	okc := ds.colIdx("orders", "o_orderkey")
	ords := keep(ds.seq("orders", func(t catalog.Tuple) bool { return t[od].I >= start && t[od].I < end }), okc, oc)
	// (nation⋈customer) ⋈ orders → [nationkey, nationname, custkey, orderkey, custkey]
	nco := hj(ncp, ords,
		func(t catalog.Tuple) int64 { return t[2].I },
		func(t catalog.Tuple) int64 { return t[1].I },
	)

	lk := ds.colIdx("lineitem", "l_orderkey")
	ls := ds.colIdx("lineitem", "l_suppkey")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	ld := ds.colIdx("lineitem", "l_discount")
	// ⋈ lineitem on orderkey → carries suppkey + revenue
	ncol := hj(nco, ds.seq("lineitem", nil),
		func(t catalog.Tuple) int64 { return t[3].I },
		ic(lk),
	)

	sk := ds.colIdx("supplier", "s_suppkey")
	sn := ds.colIdx("supplier", "s_nationkey")
	supp := keep(ds.seq("supplier", nil), sk, sn)
	// ⋈ supplier on suppkey, requiring s_nationkey = customer's nationkey.
	final := &exec.HashJoin{
		Build:    &exec.Hash{Child: supp},
		Probe:    ncol,
		BuildKey: ic(0),
		ProbeKey: func(t catalog.Tuple) int64 { return t[5+ls].I },
		Pred:     func(b, p catalog.Tuple) bool { return b[1].I == p[0].I },
		Combine: func(b, p catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{p[1], catalog.FloatDatum(p[5+lp].F * (1 - p[5+ld].F))}
		},
	}
	agg := &exec.HashAgg{
		Child:    final,
		GroupKey: func(t catalog.Tuple) string { return t[0].S },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return t.Clone() },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[1].F += t[1].F
			return acc
		},
	}
	return &exec.Sort{Child: agg, Less: func(a, b catalog.Tuple) bool { return a[1].F > b[1].F }}
}

// q6: forecasting revenue change. Pure sequential scan, scalar aggregate.
func (ds *Dataset) q6(rng *rand.Rand) exec.Operator {
	lsd := ds.colIdx("lineitem", "l_shipdate")
	ld := ds.colIdx("lineitem", "l_discount")
	lq := ds.colIdx("lineitem", "l_quantity")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	y := 1993 + int64(rng.Intn(5))
	start, end := Day(int(y), 1, 1), Day(int(y)+1, 1, 1)
	disc := 0.02 + float64(rng.Intn(8))/100

	scan := ds.seq("lineitem", func(t catalog.Tuple) bool {
		return t[lsd].I >= start && t[lsd].I < end &&
			t[ld].F >= disc-0.011 && t[ld].F <= disc+0.011 && t[lq].F < 24
	})
	return &exec.HashAgg{
		Child:    scan,
		GroupKey: func(catalog.Tuple) string { return "all" },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{catalog.FloatDatum(t[lp].F * t[ld].F)}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[0].F += t[lp].F * t[ld].F
			return acc
		},
	}
}

// q7: volume shipping. Sequential lineitem drive with random probes into
// orders and customer.
func (ds *Dataset) q7(rng *rand.Rand) exec.Operator {
	n1 := int64(6 + rng.Intn(2)) // FRANCE or GERMANY
	n2 := int64(13 - n1 + 0)     // the other one
	lsd := ds.colIdx("lineitem", "l_shipdate")
	lsk := ds.colIdx("lineitem", "l_suppkey")
	lok := ds.colIdx("lineitem", "l_orderkey")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	ld := ds.colIdx("lineitem", "l_discount")
	start, end := Day(1995, 1, 1), Day(1996, 12, 31)

	sk := ds.colIdx("supplier", "s_suppkey")
	snk := ds.colIdx("supplier", "s_nationkey")
	supp := keep(ds.seq("supplier", func(t catalog.Tuple) bool { return t[snk].I == n1 || t[snk].I == n2 }), sk, snk)

	line := ds.seq("lineitem", func(t catalog.Tuple) bool { return t[lsd].I >= start && t[lsd].I <= end })
	// supplier ⋈ lineitem → [s_suppkey, s_nationkey | lineitem...]
	sl := hj(supp, line, ic(0), ic(lsk))

	oc := ds.colIdx("orders", "o_custkey")
	nlO := &exec.NestLoop{
		Outer:    sl,
		Probe:    ds.probe("idx_orders_orderkey", "orders", nil),
		OuterKey: func(t catalog.Tuple) int64 { return t[2+lok].I },
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			// [suppnation, shipyear, revenue, custkey]
			return catalog.Tuple{
				o[1],
				catalog.IntDatum(year(o[2+lsd].I)),
				catalog.FloatDatum(o[2+lp].F * (1 - o[2+ld].F)),
				i[oc],
			}
		},
	}
	cnk := ds.colIdx("customer", "c_nationkey")
	nlC := &exec.NestLoop{
		Outer:    nlO,
		Probe:    ds.probe("idx_customer_custkey", "customer", nil),
		OuterKey: ic(3),
		Pred: func(o, i catalog.Tuple) bool {
			return (o[0].I == n1 && i[cnk].I == n2) || (o[0].I == n2 && i[cnk].I == n1)
		},
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{o[0], i[cnk], o[1], o[2]}
		},
	}
	agg := &exec.HashAgg{
		Child: nlC,
		GroupKey: func(t catalog.Tuple) string {
			return fmt.Sprintf("%d|%d|%d", t[0].I, t[1].I, t[2].I)
		},
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return t.Clone() },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[3].F += t[3].F
			return acc
		},
	}
	return &exec.Sort{Child: agg, Less: func(a, b catalog.Tuple) bool {
		if a[0].I != b[0].I {
			return a[0].I < b[0].I
		}
		if a[1].I != b[1].I {
			return a[1].I < b[1].I
		}
		return a[2].I < b[2].I
	}}
}

// q8: national market share. Part-driven random probes into lineitem and
// orders.
func (ds *Dataset) q8(rng *rand.Rand) exec.Operator {
	ptype := typeSyl1[rng.Intn(len(typeSyl1))] + " " + typeSyl2[rng.Intn(len(typeSyl2))] + " " + typeSyl3[rng.Intn(len(typeSyl3))]
	targetNation := int64(2) // BRAZIL
	pk := ds.colIdx("part", "p_partkey")
	pt := ds.colIdx("part", "p_type")
	part := keep(ds.seq("part", func(t catalog.Tuple) bool { return t[pt].S == ptype }), pk)

	lpk := ds.colIdx("lineitem", "l_partkey")
	_ = lpk
	lok := ds.colIdx("lineitem", "l_orderkey")
	lsk := ds.colIdx("lineitem", "l_suppkey")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	ld := ds.colIdx("lineitem", "l_discount")
	nlL := &exec.NestLoop{
		Outer:    part,
		Probe:    ds.probe("idx_lineitem_partkey", "lineitem", nil),
		OuterKey: ic(0),
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{i[lok], i[lsk], catalog.FloatDatum(i[lp].F * (1 - i[ld].F))}
		},
	}
	od := ds.colIdx("orders", "o_orderdate")
	start, end := Day(1995, 1, 1), Day(1996, 12, 31)
	nlO := &exec.NestLoop{
		Outer:    nlL,
		Probe:    ds.probe("idx_orders_orderkey", "orders", func(t catalog.Tuple) bool { return t[od].I >= start && t[od].I <= end }),
		OuterKey: ic(0),
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{o[1], o[2], catalog.IntDatum(year(i[od].I))}
		},
	}
	sk := ds.colIdx("supplier", "s_suppkey")
	snk := ds.colIdx("supplier", "s_nationkey")
	join := hj(keep(ds.seq("supplier", nil), sk, snk), nlO,
		ic(0),
		ic(0),
	)
	agg := &exec.HashAgg{
		Child:    join,
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[2+2].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			v := t[2+1].F
			nv := 0.0
			if t[1].I == targetNation {
				nv = v
			}
			return catalog.Tuple{t[2+2], catalog.FloatDatum(nv), catalog.FloatDatum(v)}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			v := t[2+1].F
			if t[1].I == targetNation {
				acc[1].F += v
			}
			acc[2].F += v
			return acc
		},
		Finalize: func(acc catalog.Tuple) catalog.Tuple {
			share := 0.0
			if acc[2].F > 0 {
				share = acc[1].F / acc[2].F
			}
			return catalog.Tuple{acc[0], catalog.FloatDatum(share)}
		},
	}
	return &exec.Sort{Child: agg, Less: func(a, b catalog.Tuple) bool { return a[0].I < b[0].I }}
}

// q9: product type profit — the plan of Figure 7: hash joins over part,
// partsupp and nation; nested-loop index scans into supplier and orders.
// The supplier probe sits one level below the orders probe, so their
// random requests receive priorities 2 and 3 (Table 5).
func (ds *Dataset) q9(rng *rand.Rand) exec.Operator {
	word := nameWords[rng.Intn(len(nameWords))]
	pk := ds.colIdx("part", "p_partkey")
	pn := ds.colIdx("part", "p_name")
	part := keep(ds.seq("part", func(t catalog.Tuple) bool { return strings.Contains(t[pn].S, word) }), pk)

	lpk := ds.colIdx("lineitem", "l_partkey")
	lsk := ds.colIdx("lineitem", "l_suppkey")
	lok := ds.colIdx("lineitem", "l_orderkey")
	lq := ds.colIdx("lineitem", "l_quantity")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	ld := ds.colIdx("lineitem", "l_discount")

	// HJ1: part ⋈ lineitem (both sequential).
	hj1 := hj(part, ds.seq("lineitem", nil), ic(0), ic(lpk))
	// → [p_partkey | lineitem...]
	slim := &exec.Project{Child: hj1, Fn: func(t catalog.Tuple) catalog.Tuple {
		return catalog.Tuple{
			t[1+lpk], t[1+lsk], t[1+lok],
			catalog.FloatDatum(t[1+lp].F * (1 - t[1+ld].F)), t[1+lq],
		}
	}}

	// HJ2: ⋈ partsupp on (partkey, suppkey), sequential build.
	psk := ds.colIdx("partsupp", "ps_partkey")
	pss := ds.colIdx("partsupp", "ps_suppkey")
	psc := ds.colIdx("partsupp", "ps_supplycost")
	hj2 := &exec.HashJoin{
		Build:    &exec.Hash{Child: ds.seq("partsupp", nil)},
		Probe:    slim,
		BuildKey: func(t catalog.Tuple) int64 { return t[psk].I<<32 | t[pss].I },
		ProbeKey: func(t catalog.Tuple) int64 { return t[0].I<<32 | t[1].I },
		Combine: func(b, p catalog.Tuple) catalog.Tuple {
			// [suppkey, orderkey, profit-ish]
			return catalog.Tuple{p[1], p[2], catalog.FloatDatum(p[3].F - b[psc].F*p[4].F)}
		},
	}

	// NL: ⋈ supplier via index (random, the paper's priority-2 stream).
	snk := ds.colIdx("supplier", "s_nationkey")
	nlS := &exec.NestLoop{
		Outer:    hj2,
		Probe:    ds.probe("idx_supplier_suppkey", "supplier", nil),
		OuterKey: ic(0),
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{i[snk], o[1], o[2]}
		},
	}
	// NL: ⋈ orders via index (random, priority 3).
	od := ds.colIdx("orders", "o_orderdate")
	nlO := &exec.NestLoop{
		Outer:    nlS,
		Probe:    ds.probe("idx_orders_orderkey", "orders", nil),
		OuterKey: ic(1),
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{o[0], catalog.IntDatum(year(i[od].I)), o[2]}
		},
	}
	// Top hash join with nation.
	nk := ds.colIdx("nation", "n_nationkey")
	nn := ds.colIdx("nation", "n_name")
	top := hj(keep(ds.seq("nation", nil), nk, nn), nlO, ic(0), ic(0))
	agg := &exec.HashAgg{
		Child: top,
		GroupKey: func(t catalog.Tuple) string {
			return t[1].S + "|" + strconv.FormatInt(t[2+1].I, 10)
		},
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{t[1], t[2+1], t[2+2]}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[2].F += t[2+2].F
			return acc
		},
	}
	return &exec.Sort{Child: agg, Less: func(a, b catalog.Tuple) bool {
		if a[0].S != b[0].S {
			return a[0].S < b[0].S
		}
		return a[1].I > b[1].I
	}}
}

// q10: returned item reporting. Hash joins + random customer probes.
func (ds *Dataset) q10(rng *rand.Rand) exec.Operator {
	od := ds.colIdx("orders", "o_orderdate")
	ok := ds.colIdx("orders", "o_orderkey")
	oc := ds.colIdx("orders", "o_custkey")
	start := Day(1993, 10, 1) + int64(rng.Intn(8))*91
	end := start + 91

	ords := keep(ds.seq("orders", func(t catalog.Tuple) bool { return t[od].I >= start && t[od].I < end }), ok, oc)
	lrf := ds.colIdx("lineitem", "l_returnflag")
	lok := ds.colIdx("lineitem", "l_orderkey")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	ld := ds.colIdx("lineitem", "l_discount")
	line := ds.seq("lineitem", func(t catalog.Tuple) bool { return t[lrf].S == "R" })
	ol := hj(ords, line, ic(0), ic(lok))
	// [orderkey, custkey | lineitem...]
	rev := &exec.Project{Child: ol, Fn: func(t catalog.Tuple) catalog.Tuple {
		return catalog.Tuple{t[1], catalog.FloatDatum(t[2+lp].F * (1 - t[2+ld].F))}
	}}
	cn := ds.colIdx("customer", "c_name")
	nlC := &exec.NestLoop{
		Outer:    rev,
		Probe:    ds.probe("idx_customer_custkey", "customer", nil),
		OuterKey: ic(0),
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{o[0], i[cn], o[1]}
		},
	}
	agg := &exec.HashAgg{
		Child:    nlC,
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[0].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return t.Clone() },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[2].F += t[2].F
			return acc
		},
	}
	return &exec.TopN{Child: agg, N: 20, Less: func(a, b catalog.Tuple) bool { return a[2].F > b[2].F }}
}

// q11: important stock identification. Sequential joins + aggregation.
func (ds *Dataset) q11(rng *rand.Rand) exec.Operator {
	nationKey := int64(7) // GERMANY
	_ = rng
	snk := ds.colIdx("supplier", "s_nationkey")
	sk := ds.colIdx("supplier", "s_suppkey")
	supp := keep(ds.seq("supplier", func(t catalog.Tuple) bool { return t[snk].I == nationKey }), sk)

	psk := ds.colIdx("partsupp", "ps_partkey")
	pss := ds.colIdx("partsupp", "ps_suppkey")
	psq := ds.colIdx("partsupp", "ps_availqty")
	psc := ds.colIdx("partsupp", "ps_supplycost")
	join := hj(supp, ds.seq("partsupp", nil), ic(0), ic(pss))
	agg := &exec.HashAgg{
		Child:    join,
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[1+psk].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{t[1+psk], catalog.FloatDatum(t[1+psc].F * float64(t[1+psq].I))}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[1].F += t[1+psc].F * float64(t[1+psq].I)
			return acc
		},
	}
	filter := &exec.Filter{Child: agg, Pred: func(t catalog.Tuple) bool { return t[1].F > 1000 }}
	return &exec.Sort{Child: filter, Less: func(a, b catalog.Tuple) bool { return a[1].F > b[1].F }}
}

// q12: shipping modes and order priority. Sequential lineitem drive with
// random orders probes.
func (ds *Dataset) q12(rng *rand.Rand) exec.Operator {
	m1 := shipmodes[rng.Intn(len(shipmodes))]
	m2 := shipmodes[rng.Intn(len(shipmodes))]
	y := 1993 + int64(rng.Intn(5))
	start, end := Day(int(y), 1, 1), Day(int(y)+1, 1, 1)
	lsm := ds.colIdx("lineitem", "l_shipmode")
	lrd := ds.colIdx("lineitem", "l_receiptdate")
	lcd := ds.colIdx("lineitem", "l_commitdate")
	lsd := ds.colIdx("lineitem", "l_shipdate")
	lok := ds.colIdx("lineitem", "l_orderkey")

	line := ds.seq("lineitem", func(t catalog.Tuple) bool {
		return (t[lsm].S == m1 || t[lsm].S == m2) &&
			t[lcd].I < t[lrd].I && t[lsd].I < t[lcd].I &&
			t[lrd].I >= start && t[lrd].I < end
	})
	op := ds.colIdx("orders", "o_orderpriority")
	nl := &exec.NestLoop{
		Outer:    line,
		Probe:    ds.probe("idx_orders_orderkey", "orders", nil),
		OuterKey: ic(lok),
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			high := int64(0)
			if i[op].S == "1-URGENT" || i[op].S == "2-HIGH" {
				high = 1
			}
			return catalog.Tuple{o[lsm], catalog.IntDatum(high)}
		},
	}
	agg := &exec.HashAgg{
		Child:    nl,
		GroupKey: func(t catalog.Tuple) string { return t[0].S },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{t[0], t[1], catalog.IntDatum(1 - t[1].I)}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[1].I += t[1].I
			acc[2].I += 1 - t[1].I
			return acc
		},
	}
	return &exec.Sort{Child: agg, Less: func(a, b catalog.Tuple) bool { return a[0].S < b[0].S }}
}

// q13: customer distribution. Large aggregation over orders (spills) then
// a customer join.
func (ds *Dataset) q13(rng *rand.Rand) exec.Operator {
	_ = rng
	oc := ds.colIdx("orders", "o_custkey")
	counts := &exec.HashAgg{
		Child:    ds.seq("orders", nil),
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[oc].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return catalog.Tuple{t[oc], catalog.IntDatum(1)} },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[1].I++
			return acc
		},
	}
	ck := ds.colIdx("customer", "c_custkey")
	join := hj(counts, keep(ds.seq("customer", nil), ck), ic(0), ic(0))
	dist := &exec.HashAgg{
		Child:    join,
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[1].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return catalog.Tuple{t[1], catalog.IntDatum(1)} },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[1].I++
			return acc
		},
	}
	return &exec.Sort{Child: dist, Less: func(a, b catalog.Tuple) bool {
		if a[1].I != b[1].I {
			return a[1].I > b[1].I
		}
		return a[0].I > b[0].I
	}}
}

// q14: promotion effect. Sequential lineitem drive with random part
// probes.
func (ds *Dataset) q14(rng *rand.Rand) exec.Operator {
	y := 1993 + int64(rng.Intn(5))
	m := 1 + rng.Intn(12)
	start := Day(int(y), m, 1)
	end := start + 30
	lsd := ds.colIdx("lineitem", "l_shipdate")
	lpk := ds.colIdx("lineitem", "l_partkey")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	ld := ds.colIdx("lineitem", "l_discount")
	pt := ds.colIdx("part", "p_type")

	line := ds.seq("lineitem", func(t catalog.Tuple) bool { return t[lsd].I >= start && t[lsd].I < end })
	nl := &exec.NestLoop{
		Outer:    line,
		Probe:    ds.probe("idx_part_partkey", "part", nil),
		OuterKey: ic(lpk),
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			rev := o[lp].F * (1 - o[ld].F)
			promo := 0.0
			if strings.HasPrefix(i[pt].S, "PROMO") {
				promo = rev
			}
			return catalog.Tuple{catalog.FloatDatum(promo), catalog.FloatDatum(rev)}
		},
	}
	return &exec.HashAgg{
		Child:    nl,
		GroupKey: func(catalog.Tuple) string { return "all" },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return t.Clone() },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[0].F += t[0].F
			acc[1].F += t[1].F
			return acc
		},
		Finalize: func(acc catalog.Tuple) catalog.Tuple {
			share := 0.0
			if acc[1].F > 0 {
				share = 100 * acc[0].F / acc[1].F
			}
			return catalog.Tuple{catalog.FloatDatum(share)}
		},
	}
}

// q15: top supplier. Sequential aggregation + small join.
func (ds *Dataset) q15(rng *rand.Rand) exec.Operator {
	start := Day(1993, 1, 1) + int64(rng.Intn(20))*91
	end := start + 91
	lsd := ds.colIdx("lineitem", "l_shipdate")
	lsk := ds.colIdx("lineitem", "l_suppkey")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	ld := ds.colIdx("lineitem", "l_discount")

	revenue := &exec.HashAgg{
		Child:    ds.seq("lineitem", func(t catalog.Tuple) bool { return t[lsd].I >= start && t[lsd].I < end }),
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[lsk].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{t[lsk], catalog.FloatDatum(t[lp].F * (1 - t[ld].F))}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[1].F += t[lp].F * (1 - t[ld].F)
			return acc
		},
	}
	sk := ds.colIdx("supplier", "s_suppkey")
	sn := ds.colIdx("supplier", "s_name")
	join := hj(revenue, keep(ds.seq("supplier", nil), sk, sn),
		ic(0), ic(0))
	return &exec.TopN{Child: join, N: 1, Less: func(a, b catalog.Tuple) bool { return a[1].F > b[1].F }}
}

// q16: parts/supplier relationship. Sequential joins + aggregation.
func (ds *Dataset) q16(rng *rand.Rand) exec.Operator {
	brand := brands[rng.Intn(len(brands))]
	pk := ds.colIdx("part", "p_partkey")
	pb := ds.colIdx("part", "p_brand")
	pt := ds.colIdx("part", "p_type")
	psz := ds.colIdx("part", "p_size")
	part := ds.seq("part", func(t catalog.Tuple) bool {
		return t[pb].S != brand && !strings.HasPrefix(t[pt].S, "MEDIUM") && t[psz].I%7 < 4
	})
	psk := ds.colIdx("partsupp", "ps_partkey")
	pss := ds.colIdx("partsupp", "ps_suppkey")
	join := hj(keep(part, pk, pb, pt, psz), ds.seq("partsupp", nil), ic(0), ic(psk))
	agg := &exec.HashAgg{
		Child: join,
		GroupKey: func(t catalog.Tuple) string {
			return t[1].S + "|" + t[2].S + "|" + strconv.FormatInt(t[3].I, 10)
		},
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{t[1], t[2], t[3], catalog.IntDatum(1), t[4+pss]}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			if t[4+pss].I != acc[4].I {
				acc[3].I++
				acc[4] = t[4+pss]
			}
			return acc
		},
	}
	return &exec.Sort{Child: agg, Less: func(a, b catalog.Tuple) bool {
		if a[3].I != b[3].I {
			return a[3].I > b[3].I
		}
		return a[0].S < b[0].S
	}}
}

// q17: small-quantity-order revenue. Part-driven random lineitem probes.
func (ds *Dataset) q17(rng *rand.Rand) exec.Operator {
	brand := brands[rng.Intn(len(brands))]
	container := containers[rng.Intn(len(containers))]
	pk := ds.colIdx("part", "p_partkey")
	pb := ds.colIdx("part", "p_brand")
	pc := ds.colIdx("part", "p_container")
	part := keep(ds.seq("part", func(t catalog.Tuple) bool {
		return t[pb].S == brand && t[pc].S == container
	}), pk)

	lq := ds.colIdx("lineitem", "l_quantity")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	nl := &exec.NestLoop{
		Outer:    part,
		Probe:    ds.probe("idx_lineitem_partkey", "lineitem", nil),
		OuterKey: ic(0),
		Combine: func(o, i catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{o[0], i[lq], i[lp]}
		},
	}
	agg := &exec.HashAgg{
		Child:    nl,
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[0].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			low := 0.0
			if t[1].F < 5 {
				low = t[2].F
			}
			return catalog.Tuple{t[0], catalog.FloatDatum(low)}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			if t[1].F < 5 {
				acc[1].F += t[2].F
			}
			return acc
		},
	}
	return &exec.HashAgg{
		Child:    agg,
		GroupKey: func(catalog.Tuple) string { return "all" },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{catalog.FloatDatum(t[1].F / 7)}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[0].F += t[1].F / 7
			return acc
		},
	}
}

// q18: large volume customer — the plan of Figure 10. The big hash
// aggregate over lineitem spills to temporary files (Rule 3 traffic), and
// every other input is scanned sequentially, so the query is the paper's
// temp-data showcase (Table 7).
func (ds *Dataset) q18(rng *rand.Rand) exec.Operator {
	threshold := 180.0 + float64(rng.Intn(40))
	lok := ds.colIdx("lineitem", "l_orderkey")
	lq := ds.colIdx("lineitem", "l_quantity")

	// Hash aggregate over all of lineitem: sum(l_quantity) by orderkey.
	sums := &exec.HashAgg{
		Child:    ds.seq("lineitem", nil),
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[lok].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return catalog.Tuple{t[lok], catalog.FloatDatum(t[lq].F)} },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[1].F += t[lq].F
			return acc
		},
	}
	big := &exec.Filter{Child: sums, Pred: func(t catalog.Tuple) bool { return t[1].F > threshold }}

	ok := ds.colIdx("orders", "o_orderkey")
	oc := ds.colIdx("orders", "o_custkey")
	od := ds.colIdx("orders", "o_orderdate")
	op := ds.colIdx("orders", "o_totalprice")
	// ⋈ orders (sequential probe).
	jo := hj(big, ds.seq("orders", nil), ic(0), ic(ok))
	// → [orderkey, qty, custkey, orderdate, totalprice]
	slim := &exec.Project{Child: jo, Fn: func(t catalog.Tuple) catalog.Tuple {
		return catalog.Tuple{t[0], t[1], t[2+oc], t[2+od], t[2+op]}
	}}
	ck := ds.colIdx("customer", "c_custkey")
	cn := ds.colIdx("customer", "c_name")
	// ⋈ customer (sequential probe).
	jc := hj(slim, keep(ds.seq("customer", nil), ck, cn), ic(2), ic(0))
	// → final aggregation by order.
	agg := &exec.HashAgg{
		Child:    jc,
		GroupKey: func(t catalog.Tuple) string { return strconv.FormatInt(t[0].I, 10) },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{t[6], t[2], t[0], t[3], t[4], t[1]}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple { return acc },
	}
	return &exec.TopN{Child: agg, N: 100, Less: func(a, b catalog.Tuple) bool {
		if a[4].F != b[4].F {
			return a[4].F > b[4].F
		}
		return a[3].I < b[3].I
	}}
}

// q19: discounted revenue. Sequential hash join of part and lineitem.
func (ds *Dataset) q19(rng *rand.Rand) exec.Operator {
	b1 := brands[rng.Intn(len(brands))]
	b2 := brands[rng.Intn(len(brands))]
	b3 := brands[rng.Intn(len(brands))]
	pk := ds.colIdx("part", "p_partkey")
	pb := ds.colIdx("part", "p_brand")
	pc := ds.colIdx("part", "p_container")
	part := keep(ds.seq("part", nil), pk, pb, pc)

	lpk := ds.colIdx("lineitem", "l_partkey")
	lq := ds.colIdx("lineitem", "l_quantity")
	lp := ds.colIdx("lineitem", "l_extendedprice")
	ld := ds.colIdx("lineitem", "l_discount")
	lsm := ds.colIdx("lineitem", "l_shipmode")
	line := ds.seq("lineitem", func(t catalog.Tuple) bool {
		return t[lsm].S == "AIR" || t[lsm].S == "REG AIR"
	})
	join := &exec.HashJoin{
		Build:    &exec.Hash{Child: part},
		Probe:    line,
		BuildKey: ic(0),
		ProbeKey: ic(lpk),
		Pred: func(b, p catalog.Tuple) bool {
			switch b[1].S {
			case b1:
				return p[lq].F >= 1 && p[lq].F <= 11 && strings.HasPrefix(b[2].S, "SM")
			case b2:
				return p[lq].F >= 10 && p[lq].F <= 20 && strings.HasPrefix(b[2].S, "MED")
			case b3:
				return p[lq].F >= 20 && p[lq].F <= 30 && strings.HasPrefix(b[2].S, "LG")
			}
			return false
		},
		Combine: func(b, p catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{catalog.FloatDatum(p[lp].F * (1 - p[ld].F))}
		},
	}
	return &exec.HashAgg{
		Child:    join,
		GroupKey: func(catalog.Tuple) string { return "all" },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return t.Clone() },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[0].F += t[0].F
			return acc
		},
	}
}

// q20: potential part promotion. Part-driven random probes into partsupp
// and lineitem.
func (ds *Dataset) q20(rng *rand.Rand) exec.Operator {
	word := nameWords[rng.Intn(len(nameWords))]
	y := 1993 + int64(rng.Intn(5))
	start, end := Day(int(y), 1, 1), Day(int(y)+1, 1, 1)
	pk := ds.colIdx("part", "p_partkey")
	pn := ds.colIdx("part", "p_name")
	part := keep(ds.seq("part", func(t catalog.Tuple) bool { return strings.HasPrefix(t[pn].S, word) }), pk)

	// ⋈ partsupp via index (random).
	nlPS := &exec.NestLoop{
		Outer:    part,
		Probe:    ds.probe("idx_partsupp_partkey", "partsupp", nil),
		OuterKey: ic(0),
	}
	lsd := ds.colIdx("lineitem", "l_shipdate")
	// Existence check on shipped lineitems via index (random).
	semi := &exec.NestLoop{
		Outer: nlPS,
		Probe: ds.probe("idx_lineitem_partkey", "lineitem", func(t catalog.Tuple) bool {
			return t[lsd].I >= start && t[lsd].I < end
		}),
		OuterKey: ic(0),
		Semi:     true,
		Pred: func(o, i catalog.Tuple) bool {
			return i[ds.colIdx("lineitem", "l_suppkey")].I == o[1+1].I
		},
		Combine: func(o, i catalog.Tuple) catalog.Tuple { return o },
	}
	sk := ds.colIdx("supplier", "s_suppkey")
	sn := ds.colIdx("supplier", "s_name")
	snk := ds.colIdx("supplier", "s_nationkey")
	join := hj(keep(ds.seq("supplier", nil), sk, sn, snk), semi,
		ic(0),
		func(t catalog.Tuple) int64 { return t[1+1].I })
	agg := &exec.HashAgg{
		Child:    join,
		GroupKey: func(t catalog.Tuple) string { return t[1].S },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return catalog.Tuple{t[1]} },
		Merge:    func(acc, t catalog.Tuple) catalog.Tuple { return acc },
	}
	return &exec.Sort{Child: agg, Less: func(a, b catalog.Tuple) bool { return a[0].S < b[0].S }}
}

// q21: suppliers who kept orders waiting — the plan of Figure 8: a
// sequential scan of lineitem hash-joined with supplier, then nested-loop
// index scans into orders (priority 2) and lineitem (priority 3).
func (ds *Dataset) q21(rng *rand.Rand) exec.Operator {
	nationKey := int64(rng.Intn(25))
	sk := ds.colIdx("supplier", "s_suppkey")
	sn := ds.colIdx("supplier", "s_name")
	snk := ds.colIdx("supplier", "s_nationkey")
	supp := keep(ds.seq("supplier", func(t catalog.Tuple) bool { return t[snk].I == nationKey }), sk, sn)

	lok := ds.colIdx("lineitem", "l_orderkey")
	lsk := ds.colIdx("lineitem", "l_suppkey")
	lcd := ds.colIdx("lineitem", "l_commitdate")
	lrd := ds.colIdx("lineitem", "l_receiptdate")
	l1 := ds.seq("lineitem", func(t catalog.Tuple) bool { return t[lrd].I > t[lcd].I })
	// supplier ⋈ l1 → [s_suppkey, s_name, orderkey]
	sl := hj(supp, l1, ic(0), ic(lsk))
	slim := &exec.Project{Child: sl, Fn: func(t catalog.Tuple) catalog.Tuple {
		return catalog.Tuple{t[0], t[1], t[2+lok]}
	}}

	// ⋈ orders via index (random, priority 2), keeping status 'F'.
	ost := ds.colIdx("orders", "o_orderstatus")
	nlO := &exec.NestLoop{
		Outer:    slim,
		Probe:    ds.probe("idx_orders_orderkey", "orders", func(t catalog.Tuple) bool { return t[ost].S == "F" }),
		OuterKey: ic(2),
		Combine:  func(o, i catalog.Tuple) catalog.Tuple { return o },
	}
	// exists: another supplier shipped the same order (random lineitem,
	// priority 3).
	semi := &exec.NestLoop{
		Outer:    nlO,
		Probe:    ds.probe("idx_lineitem_orderkey", "lineitem", nil),
		OuterKey: ic(2),
		Semi:     true,
		Pred:     func(o, i catalog.Tuple) bool { return i[lsk].I != o[0].I },
		Combine:  func(o, i catalog.Tuple) catalog.Tuple { return o },
	}
	// not exists: no other supplier was late on that order.
	anti := &exec.NestLoop{
		Outer:    semi,
		Probe:    ds.probe("idx_lineitem_orderkey", "lineitem", func(t catalog.Tuple) bool { return t[lrd].I > t[lcd].I }),
		OuterKey: ic(2),
		Anti:     true,
		Pred:     func(o, i catalog.Tuple) bool { return i[lsk].I != o[0].I },
	}
	agg := &exec.HashAgg{
		Child:    anti,
		GroupKey: func(t catalog.Tuple) string { return t[1].S },
		NewGroup: func(t catalog.Tuple) catalog.Tuple { return catalog.Tuple{t[1], catalog.IntDatum(1)} },
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[1].I++
			return acc
		},
	}
	return &exec.TopN{Child: agg, N: 100, Less: func(a, b catalog.Tuple) bool {
		if a[1].I != b[1].I {
			return a[1].I > b[1].I
		}
		return a[0].S < b[0].S
	}}
}

// q22: global sales opportunity. Anti join against a large orders build
// (spills) plus sequential customer scan.
func (ds *Dataset) q22(rng *rand.Rand) exec.Operator {
	_ = rng
	cph := ds.colIdx("customer", "c_phone")
	cab := ds.colIdx("customer", "c_acctbal")
	ck := ds.colIdx("customer", "c_custkey")
	cust := ds.seq("customer", func(t catalog.Tuple) bool {
		if t[cab].F <= 0 {
			return false
		}
		cc := t[cph].S[:2]
		switch cc {
		case "13", "31", "23", "29", "30", "18", "17":
			return true
		}
		return false
	})
	oc := ds.colIdx("orders", "o_custkey")
	anti := &exec.HashJoin{
		Build:    &exec.Hash{Child: keep(ds.seq("orders", nil), oc)},
		Probe:    cust,
		BuildKey: ic(0),
		ProbeKey: ic(ck),
		Anti:     true,
	}
	agg := &exec.HashAgg{
		Child:    anti,
		GroupKey: func(t catalog.Tuple) string { return t[cph].S[:2] },
		NewGroup: func(t catalog.Tuple) catalog.Tuple {
			return catalog.Tuple{catalog.StringDatum(t[cph].S[:2]), catalog.IntDatum(1), t[cab]}
		},
		Merge: func(acc, t catalog.Tuple) catalog.Tuple {
			acc[1].I++
			acc[2].F += t[cab].F
			return acc
		},
	}
	return &exec.Sort{Child: agg, Less: func(a, b catalog.Tuple) bool { return a[0].S < b[0].S }}
}
