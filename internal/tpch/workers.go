package tpch

import (
	"sync"
	"time"

	"hstoragedb/internal/dss"
	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/policy"
	"hstoragedb/internal/engine/txn"
	"hstoragedb/internal/pagestore"
)

// WorkersResult summarizes one multi-worker transactional OLTP run.
type WorkersResult struct {
	// Drivers are the per-worker OLTP drivers (their Committed lists,
	// per-kind counters and Retries), in worker order.
	Drivers []*OLTP
	// Txns counts the transactions that completed across all workers.
	Txns int64
	// Retries counts deadlock aborts that were retried across workers.
	Retries int64
	// Elapsed is the latest worker session clock: the virtual makespan
	// of the concurrent run.
	Elapsed time.Duration
}

// oltpFootprint builds the Rule 5 registry entry of one OLTP worker: a
// level-0 random-access footprint over the objects its point lookups and
// updates touch, exactly what a query stream registers when it starts.
// With it, the concurrency registry reflects the degree of concurrent
// mutating traffic, so Rule 5 classification operates on real
// contention rather than on read streams alone.
func oltpFootprint(ds *Dataset) policy.QueryInfo {
	objs := []pagestore.ObjectID{
		ds.DB.Cat.MustTable("orders").ID,
		ds.DB.Cat.MustTable("lineitem").ID,
		ds.DB.Cat.MustTable("customer").ID,
		ds.DB.Cat.MustIndex("idx_orders_orderkey").ID,
		ds.DB.Cat.MustIndex("idx_lineitem_orderkey").ID,
		ds.DB.Cat.MustIndex("idx_lineitem_partkey").ID,
		ds.DB.Cat.MustIndex("idx_customer_custkey").ID,
	}
	levels := make(map[pagestore.ObjectID][]int, len(objs))
	for _, obj := range objs {
		levels[obj] = []int{0}
	}
	return policy.QueryInfo{Levels: levels, LLow: 0, LHigh: 0, HasRandom: true}
}

// RunOLTPWorkers runs `workers` concurrent mutating OLTP streams against
// one transaction manager: each worker gets its own session (clock,
// started at startAt so a measured phase can continue a warmed system's
// virtual time), its own driver (seeded seed+worker), and registers a
// random-access footprint with the Rule 5 concurrency registry for the
// duration of its run. Workers retry deadlock losses transparently; the
// first non-retryable error stops the run. The workers' device traffic
// is dispatched opportunistically (they must not join a closed scheduler
// population, since a worker blocked on a page lock would stall the
// barrier). The optional trailing tenants attribute each worker's
// traffic to a tenant (worker i gets tenants[i]; extra workers stay on
// dss.DefaultTenant), which is how the tenants experiment measures
// per-tenant commit throughput under weighted fair sharing.
func (ds *Dataset) RunOLTPWorkers(tm *txn.Manager, inst *engine.Instance, workers, txnsPerWorker int, seed int64, startAt time.Duration, tenants ...dss.TenantID) (WorkersResult, error) {
	if workers < 1 {
		workers = 1
	}
	res := WorkersResult{Drivers: make([]*OLTP, workers)}
	sessions := make([]*engine.Session, workers)
	for i := range res.Drivers {
		res.Drivers[i] = ds.NewOLTP(seed + int64(i))
		sessions[i] = inst.NewSession()
		sessions[i].Clk.AdvanceTo(startAt)
		if i < len(tenants) {
			sessions[i].BindTenant(tenants[i])
		}
	}

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		runErr error
	)
	reg := inst.Mgr.Registry()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info := oltpFootprint(ds)
			reg.Register(info)
			defer reg.Unregister(info)
			if err := res.Drivers[i].RunTxn(tm, sessions[i], txnsPerWorker); err != nil {
				mu.Lock()
				if runErr == nil {
					runErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if runErr != nil {
		return res, runErr
	}
	for i, d := range res.Drivers {
		res.Txns += d.NewOrders + d.Payments + d.OrderStatuses
		res.Retries += d.Retries
		if t := sessions[i].Clk.Now() - startAt; t > res.Elapsed {
			res.Elapsed = t
		}
	}
	return res, nil
}
