package tpch

import (
	"math/rand"

	"hstoragedb/internal/engine"
	"hstoragedb/internal/engine/btree"
	"hstoragedb/internal/engine/catalog"
	"hstoragedb/internal/engine/heap"
	"hstoragedb/internal/engine/policy"
)

// rfOrderFraction is the fraction of |orders| that one RF1 run inserts
// (the TPC-H spec uses SF*1500 new orders ≈ 0.1%).
const rfOrderFraction = 0.001

// RF1 inserts a batch of new orders and their lineitems, maintaining the
// affected indexes. All page writes carry the update classification
// (Rule 4: write buffer). It returns the number of orders inserted.
func (ds *Dataset) RF1(sess *engine.Session) (int, error) {
	n := int(float64(ds.Orders) * rfOrderFraction)
	if n < 10 {
		n = 10
	}
	inst := sess.Instance()
	rngO := rand.New(rand.NewSource(9000 + ds.OrderKeyHorizon()))
	rngL := rand.New(rand.NewSource(9500 + ds.OrderKeyHorizon()))

	ordersInfo := ds.DB.Cat.MustTable("orders")
	lineInfo := ds.DB.Cat.MustTable("lineitem")
	ordersFile := heap.NewFile(ordersInfo.ID, ordersInfo.Schema, policy.Table)
	lineFile := heap.NewFile(lineInfo.ID, lineInfo.Schema, policy.Table)

	ordersApp := ordersFile.NewAppender(&sess.Clk, inst.Pool, ds.DB.Store.Pages(ordersInfo.ID))
	lineApp := lineFile.NewAppender(&sess.Clk, inst.Pool, ds.DB.Store.Pages(lineInfo.ID))

	ixOrders := btree.Open(ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	ixLineOK := btree.Open(ds.DB.Cat.MustIndex("idx_lineitem_orderkey").ID, inst.Pool)
	ixLinePK := btree.Open(ds.DB.Cat.MustIndex("idx_lineitem_partkey").ID, inst.Pool)

	// Heap rows first, index entries second: an index entry must never be
	// visible before the heap page holding its RID is, or a concurrent
	// probe dereferences a page that does not exist yet (the dangling-RID
	// race the throughput test used to trip over).
	type ixEntry struct {
		key int64
		rid catalog.RID
	}
	var orderEntries, lineOKEntries, linePKEntries []ixEntry
	for i := 0; i < n; i++ {
		key := ds.AllocOrderKey()
		order, lines := genOrder(rngO, rngL, key, ds.Customers, ds.Parts, ds.Suppliers)
		rid, err := ordersApp.Append(order)
		if err != nil {
			return i, err
		}
		orderEntries = append(orderEntries, ixEntry{key: key, rid: rid})
		for _, l := range lines {
			lrid, err := lineApp.Append(l)
			if err != nil {
				return i, err
			}
			lineOKEntries = append(lineOKEntries, ixEntry{key: key, rid: lrid})
			linePKEntries = append(linePKEntries, ixEntry{key: l[1].I, rid: lrid})
		}
		ds.pendingRF = append(ds.pendingRF, key)
	}
	if err := ordersApp.Close(); err != nil {
		return n, err
	}
	if err := lineApp.Close(); err != nil {
		return n, err
	}
	for _, e := range orderEntries {
		if err := ixOrders.Insert(&sess.Clk, btree.Entry{Key: e.key, RID: e.rid}, 0); err != nil {
			return n, err
		}
	}
	for _, e := range lineOKEntries {
		if err := ixLineOK.Insert(&sess.Clk, btree.Entry{Key: e.key, RID: e.rid}, 0); err != nil {
			return n, err
		}
	}
	for _, e := range linePKEntries {
		if err := ixLinePK.Insert(&sess.Clk, btree.Entry{Key: e.key, RID: e.rid}, 0); err != nil {
			return n, err
		}
	}
	// Commit: push the appended pages out so their heap sizes are visible
	// to scans (and the writes reach the storage system as updates).
	if err := inst.Pool.FlushAll(&sess.Clk); err != nil {
		return n, err
	}
	ds.DB.Cat.SetRows("orders", ordersInfo.Rows+int64(n))
	return n, nil
}

// RF2 deletes the orders (and their lineitems) inserted by earlier RF1
// runs: index lookups locate the rows, heap pages are tombstoned, index
// entries removed. All writes classify as updates.
func (ds *Dataset) RF2(sess *engine.Session) (int, error) {
	inst := sess.Instance()
	ordersInfo := ds.DB.Cat.MustTable("orders")
	lineInfo := ds.DB.Cat.MustTable("lineitem")
	ordersFile := heap.NewFile(ordersInfo.ID, ordersInfo.Schema, policy.Table)
	lineFile := heap.NewFile(lineInfo.ID, lineInfo.Schema, policy.Table)

	ixOrders := btree.Open(ds.DB.Cat.MustIndex("idx_orders_orderkey").ID, inst.Pool)
	ixLineOK := btree.Open(ds.DB.Cat.MustIndex("idx_lineitem_orderkey").ID, inst.Pool)
	ixLinePK := btree.Open(ds.DB.Cat.MustIndex("idx_lineitem_partkey").ID, inst.Pool)
	partkeyCol := lineInfo.Schema.MustCol("l_partkey")

	deleted := 0
	for _, key := range ds.pendingRF {
		// Index entries are removed before the heap rows are tombstoned,
		// so concurrent index scans stop finding the rows first; a probe
		// already holding a RID tolerates the tombstone.
		lrids, err := ixLineOK.Lookup(&sess.Clk, key, 0)
		if err != nil {
			return deleted, err
		}
		partkeys := make([]int64, 0, len(lrids))
		for _, rid := range lrids {
			t, err := lineFile.Fetch(&sess.Clk, inst.Pool, rid, 0)
			if err != nil {
				return deleted, err
			}
			if t != nil {
				partkeys = append(partkeys, t[partkeyCol].I)
			} else {
				partkeys = append(partkeys, -1)
			}
		}
		if _, err := ixLineOK.Delete(&sess.Clk, key, 0); err != nil {
			return deleted, err
		}
		for i, rid := range lrids {
			if partkeys[i] >= 0 {
				if _, err := ixLinePK.DeleteEntry(&sess.Clk, btree.Entry{Key: partkeys[i], RID: rid}, 0); err != nil {
					return deleted, err
				}
			}
		}
		rids, err := ixOrders.Lookup(&sess.Clk, key, 0)
		if err != nil {
			return deleted, err
		}
		if _, err := ixOrders.Delete(&sess.Clk, key, 0); err != nil {
			return deleted, err
		}
		for _, rid := range rids {
			if _, err := ordersFile.Delete(&sess.Clk, inst.Pool, rid, 0); err != nil {
				return deleted, err
			}
		}
		for _, rid := range lrids {
			if _, err := lineFile.Delete(&sess.Clk, inst.Pool, rid, 0); err != nil {
				return deleted, err
			}
		}
		deleted++
	}
	ds.pendingRF = nil
	return deleted, nil
}

// PendingRF reports how many RF1-inserted orders await RF2.
func (ds *Dataset) PendingRF() int { return len(ds.pendingRF) }
