package tpch

// PowerOrder is the query ordering of TPC-H power-test stream 0 (the
// "randomly ordered" sequence of Section 6.3.4 / Figure 11). RF1 runs
// before the sequence and RF2 after it.
func PowerOrder() []int {
	return []int{14, 2, 9, 20, 6, 17, 18, 8, 21, 13, 3, 22, 16, 4, 11, 15, 1, 10, 19, 5, 7, 12}
}

// ThroughputOrders returns the query permutations of throughput-test
// streams 1..n (TPC-H spec Appendix A ordering table).
func ThroughputOrders(n int) [][]int {
	all := [][]int{
		{21, 3, 18, 5, 11, 7, 6, 20, 17, 12, 16, 15, 13, 10, 2, 8, 14, 19, 9, 22, 1, 4},
		{6, 17, 14, 16, 19, 10, 9, 2, 15, 8, 5, 22, 12, 7, 13, 18, 1, 4, 20, 3, 21, 11},
		{8, 5, 4, 6, 17, 7, 1, 18, 22, 14, 9, 10, 15, 11, 20, 2, 21, 19, 13, 16, 12, 3},
		{5, 21, 14, 19, 15, 17, 12, 6, 4, 9, 8, 16, 11, 2, 10, 18, 1, 13, 7, 22, 3, 20},
		{21, 15, 4, 6, 7, 16, 19, 18, 14, 22, 11, 13, 3, 1, 2, 5, 8, 20, 12, 17, 10, 9},
	}
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}

// ScanHeavyQueries lists the scan-dominated queries (Q1, Q6, Q14) the
// contention experiments use to keep the HDD saturated with Rule 1
// sequential traffic: the iosched experiment runs them against an OLTP
// stream's pinned log writes, and the tenants experiment loops them per
// tenant to measure weighted fair shares of a saturated device.
func ScanHeavyQueries() []int {
	return []int{1, 6, 14}
}

// ShortQueries lists the queries Figure 11a plots separately (the rest go
// to Figure 11b). The paper splits by execution time; we follow the same
// split used for its readability.
func ShortQueries() map[int]bool {
	return map[int]bool{2: true, 4: true, 6: true, 11: true, 12: true, 13: true, 14: true, 15: true, 16: true, 20: true, 22: true}
}
