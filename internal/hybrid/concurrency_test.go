package hybrid

import (
	"sync"
	"testing"
	"time"

	"hstoragedb/internal/dss"
)

// TestConcurrentSubmitters hammers each cache implementation from many
// goroutines; invariants must hold and no counters may be lost. Run with
// -race to exercise the locking.
func TestConcurrentSubmitters(t *testing.T) {
	for _, mode := range []Mode{LRU, HStorage, ARC} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			sys, err := New(Config{Mode: mode, CacheBlocks: 128})
			if err != nil {
				t.Fatal(err)
			}
			space := dss.DefaultPolicySpace()
			classes := []dss.Class{space.Temporary(), 2, 3, space.Sequential(), dss.ClassWriteBuffer}

			var wg sync.WaitGroup
			const workers = 8
			const each = 500
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var at time.Duration
					for i := 0; i < each; i++ {
						cl := classes[(w+i)%len(classes)]
						lba := int64((w*37 + i) % 512)
						req := read(cl, lba, 1)
						if i%5 == 0 {
							req = write(cl, lba, 1)
						}
						at = sys.Submit(at, req)
					}
				}(w)
			}
			wg.Wait()

			snap := sys.Stats()
			if snap.Hits+snap.Misses != workers*each {
				t.Fatalf("lost requests: %d recorded, want %d",
					snap.Hits+snap.Misses, workers*each)
			}
			if pc, ok := sys.(*priorityCache); ok {
				pc.checkInvariants(t)
			}
			if ac, ok := sys.(*arcCache); ok {
				ac.checkInvariants(t)
			}
		})
	}
}

// TestCompletionTimesRespectQueueing: two requests submitted "at the same
// time" by different goroutines cannot both finish as if the device were
// idle — the later one queues.
func TestCompletionTimesRespectQueueing(t *testing.T) {
	sys, err := New(Config{Mode: HDDOnly})
	if err != nil {
		t.Fatal(err)
	}
	d1 := sys.Submit(0, read(2, 1_000_000, 1))
	d2 := sys.Submit(0, read(2, 2_000_000, 1))
	if d2 <= d1 {
		t.Fatalf("second request (%v) did not queue behind the first (%v)", d2, d1)
	}
}

// TestTransportLatency: the configured per-request transport hop is added
// to every submission.
func TestTransportLatency(t *testing.T) {
	lat := 250 * time.Microsecond
	sys, err := New(Config{Mode: SSDOnly, TransportLat: lat})
	if err != nil {
		t.Fatal(err)
	}
	done := sys.Submit(0, read(2, 0, 1))
	if done < lat {
		t.Fatalf("completion %v ignores transport latency %v", done, lat)
	}
	// TRIM also pays the hop (it is a command on the wire).
	if got := sys.Submit(0, dss.Request{Kind: dss.Trim, LBA: 0, Blocks: 1}); got < lat {
		t.Fatalf("trim completion %v ignores transport latency", got)
	}
}
