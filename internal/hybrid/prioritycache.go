package hybrid

import (
	"sort"
	"sync"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/iosched"
)

// wbGroup is the group id of the write buffer in the groups map. Regular
// priority groups use their priority number 1..N.
const wbGroup = -1

// logGroup is the group id of pinned write-ahead-log blocks. Like the
// write buffer it sits outside the 1..N priority ladder: selective
// eviction never considers it, so log blocks leave the cache only through
// TRIM when a checkpoint truncates the log.
const logGroup = -2

// priorityCache is the paper's hybrid storage prototype: an SSD cache over
// an HDD where both admission and eviction are driven by the caching
// priority carried on each request (Section 5.1).
//
// Cached blocks are organized into N priority groups, each managed by LRU.
// The six cache actions — hit, read allocation, write allocation,
// bypassing, re-allocation, eviction — are implemented verbatim, plus the
// write buffer of Rule 4 and TRIM-driven invalidation for temporary data.
type priorityCache struct {
	mu   sync.Mutex
	base statsBase

	ssd *device.Device
	hdd *device.Device
	pol dss.PolicySpace
	lat time.Duration

	grp  *iosched.Group
	ssdS *iosched.Scheduler
	hddS *iosched.Scheduler

	capacity   int
	asyncAlloc bool
	cachePF    bool // admit readahead completions into spare capacity

	table    map[int64]*blockMeta // lbn -> metadata (Section 5.2 hash table)
	groups   map[int]*lruList     // priority -> LRU group
	cached   int
	wbBlocks int     // write-buffer occupancy in blocks
	wbLimit  int     // b * capacity
	freePBN  []int64 // recycled SSD slots
	nextPBN  int64

	// cachedBy counts cached blocks per tenant (each block charged to
	// the last tenant that touched it). With tenant weights configured
	// (Config.Sched.TenantWeights), eviction prefers victims of tenants
	// holding more than their weight share of capacity, so a heavy
	// tenant recycles its own blocks instead of everyone else's.
	// tenantW/tenantWSum snapshot the construction-time weights so the
	// eviction path never takes the scheduler group's mutex; capacity
	// shares follow the Config, not later SetTenantWeight calls.
	cachedBy   map[dss.TenantID]int
	tenantW    map[dss.TenantID]float64
	tenantWSum float64
}

func newPriorityCache(cfg Config) *priorityCache {
	c := &priorityCache{
		base:       newStatsBase(HStorage, cfg.Obs),
		ssd:        device.New(cfg.SSDSpec),
		hdd:        device.New(cfg.HDDSpec),
		pol:        cfg.Policy,
		lat:        cfg.TransportLat,
		capacity:   cfg.CacheBlocks,
		asyncAlloc: cfg.AsyncReadAlloc,
		cachePF:    cfg.CachePrefetched,
		table:      make(map[int64]*blockMeta),
		groups:     make(map[int]*lruList),
		cachedBy:   make(map[dss.TenantID]int),
	}
	c.grp, c.ssdS, c.hddS = attachCacheScheds(cfg, c.ssd, c.hdd)
	for id, w := range cfg.Sched.TenantWeights {
		if w > 0 {
			if c.tenantW == nil {
				c.tenantW = make(map[dss.TenantID]float64, len(cfg.Sched.TenantWeights))
			}
			c.tenantW[id] = w
			c.tenantWSum += w
		}
	}
	if c.cachePF {
		c.hddS.EnablePrefetchFeed()
	}
	c.wbLimit = int(float64(cfg.CacheBlocks) * cfg.Policy.WriteBufferFrac)
	for p := 1; p <= cfg.Policy.N; p++ {
		c.groups[p] = newList()
	}
	c.groups[wbGroup] = newList()
	c.groups[logGroup] = newList()
	return c
}

func newList() *lruList {
	l := &lruList{}
	l.init()
	return l
}

// Submit implements dss.Storage.
func (c *priorityCache) Submit(at time.Duration, req dss.Request) time.Duration {
	at += c.lat
	c.admitPrefetched()
	if req.Kind == dss.Trim {
		c.trim(req)
		return at
	}
	if req.Blocks <= 0 {
		return at
	}

	if done, ok := c.trySequentialRun(at, req); ok {
		return done
	}

	done := at
	var hits int64
	for i := 0; i < req.Blocks; i++ {
		lbn := req.LBA + int64(i)
		var t time.Duration
		var hit bool
		if req.Op == device.Read {
			t, hit = c.readBlock(at, req, lbn)
		} else {
			t, hit = c.writeBlock(at, req, lbn)
		}
		if hit {
			hits++
		}
		if t > done {
			done = t
		}
	}

	c.mu.Lock()
	c.base.record(req.Class, req.Op, req.Blocks, hits)
	c.mu.Unlock()
	return done
}

// trySequentialRun fast-paths a multi-block sequential-class read whose
// range is entirely uncached: the whole run bypasses the cache as one
// scheduler submission instead of per-block traffic, which keeps the
// HDD's LBA run intact under contention and gives the scheduler a
// coalesced unit to grant (and to read ahead from). The engine's
// storage manager submits page-at-a-time (the scheduler's own LBA
// coalescing covers that shape); this path serves multi-block
// submissions from library users driving dss.Storage directly. Its
// accounting matches the per-block path: one record per request,
// Bypasses counted per block. Returns ok=false when any block is
// cached, leaving the request to the per-block path.
func (c *priorityCache) trySequentialRun(at time.Duration, req dss.Request) (time.Duration, bool) {
	if req.Op != device.Read || req.Blocks <= 1 || req.Class != c.pol.Sequential() {
		return 0, false
	}
	c.mu.Lock()
	for i := 0; i < req.Blocks; i++ {
		if c.table[req.LBA+int64(i)] != nil {
			c.mu.Unlock()
			return 0, false
		}
	}
	c.base.snap.Bypasses += int64(req.Blocks)
	c.base.record(req.Class, req.Op, req.Blocks, 0)
	c.mu.Unlock()
	return submitDev(c.hddS, at, req, device.Read, req.LBA, req.Blocks), true
}

// admitPrefetched pulls readahead completions from the HDD scheduler and
// admits them into spare cache capacity only: prefetched blocks join the
// "non-caching and eviction" group (first in line for eviction, clean),
// and are dropped on the floor when the cache is full — prefetch never
// evicts anything, pinned log blocks least of all. Disabled unless
// Config.CachePrefetched opted in; the scheduler's own readahead buffer
// serves the scan stream either way.
func (c *priorityCache) admitPrefetched() {
	if !c.cachePF {
		return
	}
	pf := c.hddS.TakePrefetched()
	if len(pf) == 0 {
		return
	}
	evict := int(c.pol.Eviction())
	c.mu.Lock()
	for _, p := range pf {
		for i := 0; i < p.Blocks; i++ {
			lbn := p.LBA + int64(i)
			if c.cached >= c.capacity || c.table[lbn] != nil {
				continue
			}
			meta := c.insert(lbn, evict, false, p.Tenant)
			c.base.snap.Prefetched++
			c.ssdS.SubmitBackground(p.Ready, device.Write, meta.pbn, 1, c.pol.Eviction(), p.Tenant)
		}
	}
	c.mu.Unlock()
}

// readBlock serves one block of a read request and returns (completion
// time, cache hit).
func (c *priorityCache) readBlock(at time.Duration, req dss.Request, lbn int64) (time.Duration, bool) {
	class := req.Class
	c.mu.Lock()
	meta := c.table[lbn]
	if meta != nil {
		// Action 1: cache hit (possibly followed by re-allocation).
		pbn := meta.pbn
		c.retagTenant(meta, req.Tenant)
		c.reallocate(meta, class)
		c.mu.Unlock()
		return submitDev(c.ssdS, at, req, device.Read, pbn, 1), true
	}

	if c.pol.NonCaching(class) || class == dss.ClassNone || class == dss.ClassWriteBuffer || class == dss.ClassLog {
		// Action 4: bypassing — low-priority blocks move directly between
		// the OS and the level-two device. The write-buffer class is only
		// meaningful on writes; a (malformed) read carrying it is served
		// without disturbing the layout. Log reads happen only during a
		// sequential recovery scan after a restart (cold cache), so they
		// are not worth allocating for either.
		c.base.snap.Bypasses++
		c.mu.Unlock()
		return submitDev(c.hddS, at, req, device.Read, lbn, 1), false
	}

	// Action 2: read allocation.
	k := int(class)
	if !c.ensureSpace(at, k, false) {
		// No admissible victim: every cached block outranks the incoming
		// priority, so the request bypasses the cache.
		c.base.snap.Bypasses++
		c.mu.Unlock()
		return submitDev(c.hddS, at, req, device.Read, lbn, 1), false
	}
	meta = c.insert(lbn, k, false, req.Tenant)
	c.base.snap.ReadAllocs++
	pbn := meta.pbn
	c.mu.Unlock()

	hddDone := submitDev(c.hddS, at, req, device.Read, lbn, 1)
	if c.asyncAlloc {
		// Asynchronous read allocation: the block is served from the HDD
		// into the OS and copied into cache off the critical path.
		c.ssdS.SubmitBackground(hddDone, device.Write, pbn, 1, class, req.Tenant)
		return hddDone, false
	}
	// Synchronous read allocation: data is placed into cache before the
	// read returns.
	return submitDev(c.ssdS, hddDone, req, device.Write, pbn, 1), false
}

// writeBlock serves one block of a write request.
func (c *priorityCache) writeBlock(at time.Duration, req dss.Request, lbn int64) (time.Duration, bool) {
	class := req.Class
	if class == dss.ClassWriteBuffer {
		return c.writeBuffered(at, req, lbn)
	}
	if class == dss.ClassLog {
		return c.writeLog(at, req, lbn)
	}

	c.mu.Lock()
	meta := c.table[lbn]
	if meta != nil {
		// Write hit: update the cached copy in place.
		c.retagTenant(meta, req.Tenant)
		if meta.class == wbGroup {
			// Leaving it in the write buffer keeps the occupancy
			// accounting intact.
			c.groups[wbGroup].moveToFront(meta)
		} else {
			c.reallocate(meta, class)
		}
		meta.dirty = true
		pbn := meta.pbn
		c.mu.Unlock()
		return submitDev(c.ssdS, at, req, device.Write, pbn, 1), true
	}

	if c.pol.NonCaching(class) || class == dss.ClassNone {
		c.base.snap.Bypasses++
		c.mu.Unlock()
		return submitDev(c.hddS, at, req, device.Write, lbn, 1), false
	}

	// Action 3: write allocation — incoming blocks are placed in cache,
	// marked dirty, and the request returns as soon as marking is done.
	k := int(class)
	if !c.ensureSpace(at, k, false) {
		c.base.snap.Bypasses++
		c.mu.Unlock()
		return submitDev(c.hddS, at, req, device.Write, lbn, 1), false
	}
	meta = c.insert(lbn, k, true, req.Tenant)
	c.base.snap.WriteAllocs++
	pbn := meta.pbn
	c.mu.Unlock()
	return submitDev(c.ssdS, at, req, device.Write, pbn, 1), false
}

// writeBuffered handles Rule 4 updates: they win cache space over any
// other priority, bounded by the write-buffer budget b. With a zero
// budget (the b = 0 ablation) there is no write buffer at all: the
// update goes to the HDD on the caller's critical path, exactly the
// behaviour Rule 4 exists to avoid.
func (c *priorityCache) writeBuffered(at time.Duration, req dss.Request, lbn int64) (time.Duration, bool) {
	if c.wbLimit <= 0 {
		c.mu.Lock()
		if meta := c.table[lbn]; meta != nil {
			// A cached copy would go stale (and a dirty one would later
			// destage over the fresh data): drop it before bypassing.
			if meta.class == wbGroup {
				c.wbBlocks--
			}
			c.drop(meta)
		}
		c.base.snap.Bypasses++
		c.mu.Unlock()
		return submitDev(c.hddS, at, req, device.Write, lbn, 1), false
	}
	c.mu.Lock()
	meta := c.table[lbn]
	hit := meta != nil
	if meta == nil {
		if !c.ensureSpace(at, 0, true) {
			// Cache entirely occupied by the write buffer itself: flush
			// it and retry once.
			c.flushWriteBuffer(at)
			if !c.ensureSpace(at, 0, true) {
				c.base.snap.Bypasses++
				c.mu.Unlock()
				return submitDev(c.hddS, at, req, device.Write, lbn, 1), false
			}
		}
		meta = c.insert(lbn, wbGroup, true, req.Tenant)
		c.wbBlocks++
		c.base.snap.WriteAllocs++
	} else {
		c.retagTenant(meta, req.Tenant)
		if meta.class != wbGroup {
			c.moveGroup(meta, wbGroup)
			c.wbBlocks++
		} else {
			c.groups[wbGroup].moveToFront(meta)
		}
		meta.dirty = true
	}
	pbn := meta.pbn
	flush := c.wbBlocks > c.wbLimit
	if flush {
		// When occupancy exceeds b, all write-buffer content is flushed
		// into the HDD (asynchronously).
		c.flushWriteBuffer(at)
	}
	c.mu.Unlock()
	return submitDev(c.ssdS, at, req, device.Write, pbn, 1), hit
}

// writeLog serves a write carrying the pinned log class: the block is
// placed (or refreshed) in the non-evictable log group and written through
// — the commit-critical completion time is the SSD write, while the HDD
// copy is destaged in the background, so neither eviction nor TRIM ever
// owes the block a write-back.
func (c *priorityCache) writeLog(at time.Duration, req dss.Request, lbn int64) (time.Duration, bool) {
	c.mu.Lock()
	meta := c.table[lbn]
	hit := meta != nil
	if meta == nil {
		if !c.ensureSpace(at, 0, true) {
			// Cache fully occupied by other pinned blocks: the log write
			// falls through to the HDD.
			c.base.snap.Bypasses++
			c.mu.Unlock()
			return submitDev(c.hddS, at, req, device.Write, lbn, 1), false
		}
		meta = c.insert(lbn, logGroup, false, req.Tenant)
		c.base.snap.WriteAllocs++
	} else {
		c.retagTenant(meta, req.Tenant)
		if meta.class != logGroup {
			if meta.class == wbGroup {
				c.wbBlocks--
			}
			c.moveGroup(meta, logGroup)
			c.base.snap.Reallocs++
		} else {
			c.groups[logGroup].moveToFront(meta)
		}
		meta.dirty = false // write-through: the HDD copy is scheduled below
	}
	pbn := meta.pbn
	c.mu.Unlock()
	c.hddS.SubmitBackground(at, device.Write, lbn, 1, req.Class, req.Tenant)
	return submitDev(c.ssdS, at, req, device.Write, pbn, 1), hit
}

// flushWriteBuffer writes every dirty write-buffer block to the HDD in
// the background and releases the write-buffer budget. The flushed blocks
// stay in cache — clean, demoted to the lowest caching priority — so
// re-reads of recently updated data still hit; they are simply first in
// line for eviction. Caller holds c.mu.
func (c *priorityCache) flushWriteBuffer(at time.Duration) {
	g := c.groups[wbGroup]
	demoteTo := c.pol.RandHigh
	type destage struct {
		lbn    int64
		tenant dss.TenantID
	}
	var dirty []destage
	for g.len() > 0 {
		meta := g.back()
		if meta.dirty {
			dirty = append(dirty, destage{meta.lbn, meta.tenant})
			meta.dirty = false
		}
		c.moveGroup(meta, demoteTo)
	}
	// Destage in LBA order: an elevator pass turns the buffer's random
	// update footprint into near-sequential HDD runs the scheduler can
	// coalesce, instead of one positioning penalty per block.
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].lbn < dirty[j].lbn })
	for _, d := range dirty {
		c.hddS.SubmitBackground(at, device.Write, d.lbn, 1, dss.ClassWriteBuffer, d.tenant)
	}
	c.wbBlocks = 0
	c.base.snap.WBFlushes++
}

// reallocate applies the priority carried by a request to a block already
// in cache (Action 5). Caller holds c.mu.
func (c *priorityCache) reallocate(meta *blockMeta, class dss.Class) {
	switch {
	case class == dss.ClassNone:
		// Unclassified requests do not disturb the layout.
		c.groups[meta.class].moveToFront(meta)
	case class == c.pol.Sequential():
		// "Non-caching and non-eviction": the block's existing priority,
		// determined by a previous request, is not affected.
	case class == dss.ClassCompaction:
		// Compaction reading (or rewriting) a block some foreground
		// request cached does not disturb the layout: the block's
		// residency was earned by the foreground class, and bulk
		// reorganization passing over it says nothing about its future
		// value. (Without this case the int(class) fallback would index
		// a group that does not exist.)
	case class == c.pol.Eviction():
		// "Non-caching and eviction": demote so the block leaves cache
		// timely.
		if meta.class != int(c.pol.Eviction()) {
			if meta.class == wbGroup {
				c.wbBlocks--
			}
			c.moveGroup(meta, int(c.pol.Eviction()))
			c.base.snap.Reallocs++
		}
	case class == dss.ClassWriteBuffer:
		if meta.class != wbGroup {
			if meta.class == logGroup {
				// Log blocks are pinned; a (malformed) non-log request
				// cannot demote them.
				c.groups[logGroup].moveToFront(meta)
				return
			}
			c.moveGroup(meta, wbGroup)
			c.wbBlocks++
			c.base.snap.Reallocs++
		} else {
			c.groups[wbGroup].moveToFront(meta)
		}
	case class == dss.ClassLog:
		if meta.class != logGroup {
			if meta.class == wbGroup {
				c.wbBlocks--
			}
			c.moveGroup(meta, logGroup)
			c.base.snap.Reallocs++
		} else {
			c.groups[logGroup].moveToFront(meta)
		}
	default:
		k := int(class)
		if meta.class != k {
			if meta.class == wbGroup {
				c.wbBlocks--
			}
			c.moveGroup(meta, k)
			c.base.snap.Reallocs++
		} else {
			c.groups[k].moveToFront(meta)
		}
	}
}

// victimScan bounds how far from the LRU end of the victim group the
// tenant-share preference looks for an over-share tenant's block. A
// small constant keeps eviction O(1) against a large group while still
// catching the common case: a churning heavy tenant's blocks dominate
// the cold end of the lowest-priority group.
const victimScan = 16

// ensureSpace guarantees a free slot for an incoming block of priority k
// (k == 0 with forWB means a write-buffer block, which outranks
// everything). It returns false when no cached block has priority >= k,
// i.e. selective allocation refuses admission. Caller holds c.mu.
func (c *priorityCache) ensureSpace(at time.Duration, k int, forWB bool) bool {
	if c.cached < c.capacity {
		return true
	}
	// Selective eviction: find the group whose priority is numerically
	// largest (all other blocks outrank it) and evict its LRU block —
	// or, under tenant fair shares, the coldest nearby block of a
	// tenant that exceeds its capacity share.
	for p := c.pol.N; p >= 1; p-- {
		g := c.groups[p]
		if g.len() == 0 {
			continue
		}
		if !forWB && p < k {
			// The lowest-ranked cached block still outranks the incoming
			// one: admission denied.
			return false
		}
		c.evict(at, c.pickVictimLocked(g))
		return true
	}
	// Only pinned blocks (write buffer, log) remain.
	return false
}

// pickVictimLocked chooses the eviction victim within a priority group:
// plain LRU, unless tenant fair shares are configured — then the scan
// from the LRU end prefers (within victimScan entries) a block of a
// tenant holding more cached blocks than its weight share of capacity,
// so over-share tenants recycle their own footprint before touching
// anyone else's. Class rank still dominates: shares redirect the victim
// only inside the group selective eviction already chose. Caller holds
// c.mu; g is non-empty.
func (c *priorityCache) pickVictimLocked(g *lruList) *blockMeta {
	lru := g.back()
	if len(c.tenantW) == 0 {
		return lru
	}
	over := func(t dss.TenantID) bool {
		w, ok := c.tenantW[t]
		if !ok || c.tenantWSum <= 0 {
			// Tenants without a configured weight are not governed.
			return false
		}
		return float64(c.cachedBy[t]) > w/c.tenantWSum*float64(c.capacity)
	}
	n := 0
	for b := lru; b != &g.root && n < victimScan; b = b.prev {
		if over(b.tenant) {
			if b != lru {
				c.base.snap.ShareEvictions++
				c.base.mShareEvict.Inc()
			}
			return b
		}
		n++
	}
	return lru
}

// evict removes a block from cache, writing it back if dirty (Action 6).
// Caller holds c.mu.
func (c *priorityCache) evict(at time.Duration, meta *blockMeta) {
	if meta.dirty {
		c.hddS.SubmitBackground(at, device.Write, meta.lbn, 1, groupClass(meta.class), meta.tenant)
		c.base.snap.DirtyEvict++
		c.base.mDirtyEvict.Inc()
	}
	c.base.snap.Evictions++
	c.base.mEvict.Inc()
	if meta.class == wbGroup {
		c.wbBlocks--
	}
	c.drop(meta)
}

// unchargeTenant releases one cached block's capacity charge from
// tenant t. Caller holds c.mu.
func (c *priorityCache) unchargeTenant(t dss.TenantID) {
	if n := c.cachedBy[t]; n > 1 {
		c.cachedBy[t] = n - 1
	} else {
		delete(c.cachedBy, t)
	}
}

// drop unlinks a block and recycles its SSD slot. Caller holds c.mu.
func (c *priorityCache) drop(meta *blockMeta) {
	c.groups[meta.class].remove(meta)
	delete(c.table, meta.lbn)
	c.freePBN = append(c.freePBN, meta.pbn)
	c.cached--
	c.unchargeTenant(meta.tenant)
}

// insert adds a new block to group k, charged to tenant t, and returns
// its metadata. Caller holds c.mu and must have ensured space.
func (c *priorityCache) insert(lbn int64, k int, dirty bool, t dss.TenantID) *blockMeta {
	var pbn int64
	if n := len(c.freePBN); n > 0 {
		pbn = c.freePBN[n-1]
		c.freePBN = c.freePBN[:n-1]
	} else {
		pbn = c.nextPBN
		c.nextPBN++
	}
	meta := &blockMeta{lbn: lbn, pbn: pbn, class: k, dirty: dirty, tenant: t}
	c.table[lbn] = meta
	c.groups[k].pushFront(meta)
	c.cached++
	c.cachedBy[t]++
	return meta
}

// retagTenant re-attributes a cached block to the tenant of the latest
// request that touched it, so capacity charges follow actual use of
// shared blocks. Caller holds c.mu.
func (c *priorityCache) retagTenant(meta *blockMeta, t dss.TenantID) {
	if meta.tenant == t {
		return
	}
	c.unchargeTenant(meta.tenant)
	meta.tenant = t
	c.cachedBy[t]++
}

// TenantOccupancy reports the cached blocks charged to each tenant.
// Used by tests and the tenants experiment.
func (c *priorityCache) TenantOccupancy() map[dss.TenantID]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[dss.TenantID]int, len(c.cachedBy))
	for t, n := range c.cachedBy {
		out[t] = n
	}
	return out
}

// groupClass maps a cache group id back to the dss class its destage
// traffic carries.
func groupClass(group int) dss.Class {
	switch group {
	case wbGroup:
		return dss.ClassWriteBuffer
	case logGroup:
		return dss.ClassLog
	default:
		return dss.Class(group)
	}
}

// moveGroup transfers a block between priority groups. Caller holds c.mu.
func (c *priorityCache) moveGroup(meta *blockMeta, k int) {
	c.groups[meta.class].remove(meta)
	meta.class = k
	c.groups[k].pushFront(meta)
}

// trim invalidates an LBA range (deleted temporary files). Dirty copies
// are dropped without write-back: the blocks are useless by definition.
func (c *priorityCache) trim(req dss.Request) {
	c.mu.Lock()
	for i := 0; i < req.Blocks; i++ {
		if meta := c.table[req.LBA+int64(i)]; meta != nil {
			if meta.class == wbGroup {
				c.wbBlocks--
			}
			c.drop(meta)
			c.base.snap.Trimmed++
		}
	}
	c.mu.Unlock()
}

// Stats implements System.
func (c *priorityCache) Stats() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base.snapshot(c.cached)
}

// ResetStats implements System.
func (c *priorityCache) ResetStats() {
	c.mu.Lock()
	c.base.reset()
	c.mu.Unlock()
	c.grp.ResetStats()
}

// Mode implements System.
func (c *priorityCache) Mode() Mode { return HStorage }

// SSD implements System.
func (c *priorityCache) SSD() *device.Device { return c.ssd }

// HDD implements System.
func (c *priorityCache) HDD() *device.Device { return c.hdd }

// Sched implements System.
func (c *priorityCache) Sched() *iosched.Group { return c.grp }

// GroupLens reports the number of cached blocks per priority group,
// including the write buffer under key -1. Used by tests and ablations.
func (c *priorityCache) GroupLens() map[int]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]int, len(c.groups))
	for p, g := range c.groups {
		if g.len() > 0 {
			out[p] = g.len()
		}
	}
	return out
}
