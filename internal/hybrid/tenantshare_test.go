package hybrid

import (
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/iosched"
)

// tenantRead submits one cached-priority read attributed to a tenant.
func tenantRead(sys System, at time.Duration, tenant dss.TenantID, lba int64) time.Duration {
	return sys.Submit(at, dss.Request{
		Op: device.Read, LBA: lba, Blocks: 1, Class: dss.Class(2), Tenant: tenant,
	})
}

// TestTenantCacheShares: with tenant weights configured, a flooding
// tenant that exceeds its capacity share recycles its own blocks — the
// under-share tenant's working set survives the flood. Without weights
// the same flood evicts the cold tenant entirely (the class-only
// baseline this feature exists to fix).
func TestTenantCacheShares(t *testing.T) {
	build := func(fair bool) (System, *priorityCache) {
		cfg := Config{Mode: HStorage, CacheBlocks: 64}
		if fair {
			cfg.Sched.TenantWeights = map[dss.TenantID]float64{1: 1, 2: 1}
		}
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys, sys.(*priorityCache)
	}
	flood := func(sys System) {
		// Tenant 2 warms a small working set; tenant 1 fills the cache
		// and keeps allocating past its share.
		at := time.Duration(0)
		for i := 0; i < 10; i++ {
			at = tenantRead(sys, at, 2, int64(i))
		}
		for i := 0; i < 54; i++ {
			at = tenantRead(sys, at, 1, 1000+int64(i))
		}
		for i := 0; i < 10; i++ {
			at = tenantRead(sys, at, 1, 2000+int64(i))
		}
	}

	sys, pc := build(true)
	flood(sys)
	occ := pc.TenantOccupancy()
	if occ[2] != 10 {
		t.Fatalf("under-share tenant lost cached blocks to an over-share flood: occupancy %+v", occ)
	}
	if got := sys.Stats().ShareEvictions; got < 10 {
		t.Fatalf("ShareEvictions = %d, want >= 10 redirected evictions", got)
	}

	base, pcBase := build(false)
	flood(base)
	if occ := pcBase.TenantOccupancy(); occ[2] != 0 {
		t.Fatalf("class-only baseline unexpectedly protects tenants: occupancy %+v", occ)
	}
}

// TestTenantRetagFollowsUse: capacity charges follow the last tenant
// that touched a shared block.
func TestTenantRetagFollowsUse(t *testing.T) {
	sys, err := New(Config{Mode: HStorage, CacheBlocks: 64,
		Sched: iosched.Config{TenantWeights: map[dss.TenantID]float64{1: 1, 2: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	pc := sys.(*priorityCache)
	at := tenantRead(sys, 0, 1, 42) // allocate under tenant 1
	tenantRead(sys, at, 2, 42)      // hit under tenant 2
	occ := pc.TenantOccupancy()
	if occ[1] != 0 || occ[2] != 1 {
		t.Fatalf("retag did not follow use: occupancy %+v", occ)
	}
}
