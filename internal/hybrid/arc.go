package hybrid

import (
	"sync"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/iosched"
)

// arcCache implements ARC (Megiddo & Modha, FAST 2003) — the paper's
// other monitoring-based reference policy ([15], used in IBM storage
// systems and ZFS) — as an additional baseline beyond LRU. Like the LRU
// baseline it ignores request classes and TRIM; unlike LRU it adapts the
// split between recency (T1) and frequency (T2) using ghost lists B1/B2.
type arcCache struct {
	mu   sync.Mutex
	base statsBase

	ssd *device.Device
	hdd *device.Device
	lat time.Duration

	grp  *iosched.Group
	ssdS *iosched.Scheduler
	hddS *iosched.Scheduler

	capacity   int
	asyncAlloc bool

	t1, t2, b1, b2 lruList
	table          map[int64]*arcEntry
	p              int // adaptive target for |T1|

	freePBN []int64
	nextPBN int64
}

// arcList identifies which of the four ARC lists an entry lives on.
type arcList int

const (
	listT1 arcList = iota
	listT2
	listB1
	listB2
)

// arcEntry wraps blockMeta with its ARC list membership. Ghost entries
// (B1/B2) have no SSD slot.
type arcEntry struct {
	meta blockMeta
	list arcList
}

func newARCCache(cfg Config) *arcCache {
	c := &arcCache{
		base:       newStatsBase(ARC, cfg.Obs),
		ssd:        device.New(cfg.SSDSpec),
		hdd:        device.New(cfg.HDDSpec),
		lat:        cfg.TransportLat,
		capacity:   cfg.CacheBlocks,
		asyncAlloc: cfg.AsyncReadAlloc,
		table:      make(map[int64]*arcEntry),
	}
	c.grp, c.ssdS, c.hddS = attachCacheScheds(cfg, c.ssd, c.hdd)
	c.t1.init()
	c.t2.init()
	c.b1.init()
	c.b2.init()
	return c
}

func (c *arcCache) list(l arcList) *lruList {
	switch l {
	case listT1:
		return &c.t1
	case listT2:
		return &c.t2
	case listB1:
		return &c.b1
	}
	return &c.b2
}

// move transfers an entry between ARC lists. Caller holds c.mu.
func (c *arcCache) move(e *arcEntry, to arcList) {
	c.list(e.list).remove(&e.meta)
	e.list = to
	c.list(to).pushFront(&e.meta)
}

// allocPBN hands out an SSD slot. Caller holds c.mu.
func (c *arcCache) allocPBN() int64 {
	if n := len(c.freePBN); n > 0 {
		pbn := c.freePBN[n-1]
		c.freePBN = c.freePBN[:n-1]
		return pbn
	}
	pbn := c.nextPBN
	c.nextPBN++
	return pbn
}

// entryOf maps a list node back to its arcEntry (blockMeta is the first
// field, so the lookup table suffices).
func (c *arcCache) entryOf(m *blockMeta) *arcEntry { return c.table[m.lbn] }

// replace evicts one resident block to a ghost list, per the ARC paper's
// REPLACE subroutine. Caller holds c.mu.
func (c *arcCache) replace(at time.Duration, inB2 bool) {
	if c.t1.len() >= 1 && ((inB2 && c.t1.len() == c.p) || c.t1.len() > c.p) {
		victim := c.entryOf(c.t1.back())
		c.demote(at, victim, listB1)
	} else if c.t2.len() > 0 {
		victim := c.entryOf(c.t2.back())
		c.demote(at, victim, listB2)
	} else if c.t1.len() > 0 {
		victim := c.entryOf(c.t1.back())
		c.demote(at, victim, listB1)
	}
}

// demote turns a resident entry into a ghost, writing back dirty data.
// A class-blind cache does not know what it is destaging: the
// write-back goes out unclassified. Caller holds c.mu.
func (c *arcCache) demote(at time.Duration, e *arcEntry, ghost arcList) {
	if e.meta.dirty {
		c.hddS.SubmitBackground(at, device.Write, e.meta.lbn, 1, dss.ClassNone, e.meta.tenant)
		c.base.snap.DirtyEvict++
		c.base.mDirtyEvict.Inc()
		e.meta.dirty = false
	}
	c.base.snap.Evictions++
	c.base.mEvict.Inc()
	c.freePBN = append(c.freePBN, e.meta.pbn)
	c.move(e, ghost)
}

// dropGhost removes a ghost entry entirely. Caller holds c.mu.
func (c *arcCache) dropGhost(m *blockMeta) {
	e := c.entryOf(m)
	c.list(e.list).remove(&e.meta)
	delete(c.table, m.lbn)
}

func (c *arcCache) resident(e *arcEntry) bool { return e.list == listT1 || e.list == listT2 }

// Submit implements dss.Storage.
func (c *arcCache) Submit(at time.Duration, req dss.Request) time.Duration {
	at += c.lat
	if req.Kind == dss.Trim || req.Blocks <= 0 {
		// Monitoring-based: TRIM is not understood.
		return at
	}
	done := at
	var hits int64
	for i := 0; i < req.Blocks; i++ {
		t, hit := c.access(at, req, req.LBA+int64(i))
		if hit {
			hits++
		}
		if t > done {
			done = t
		}
	}
	c.mu.Lock()
	c.base.record(req.Class, req.Op, req.Blocks, hits)
	c.mu.Unlock()
	return done
}

func (c *arcCache) access(at time.Duration, req dss.Request, lbn int64) (time.Duration, bool) {
	op := req.Op
	c.mu.Lock()
	e := c.table[lbn]

	// Case I: hit in T1 or T2.
	if e != nil && c.resident(e) {
		c.move(e, listT2)
		if op == device.Write {
			e.meta.dirty = true
		}
		pbn := e.meta.pbn
		c.mu.Unlock()
		return submitDev(c.ssdS, at, req, op, pbn, 1), true
	}

	// Cases II/III: ghost hits adapt the target p.
	if e != nil && e.list == listB1 {
		delta := 1
		if c.b1.len() > 0 && c.b2.len() > c.b1.len() {
			delta = c.b2.len() / c.b1.len()
		}
		c.p = min(c.capacity, c.p+delta)
		c.replace(at, false)
		e.meta.pbn = c.allocPBN()
		e.meta.dirty = op == device.Write
		c.move(e, listT2)
		return c.finishMiss(at, req, &e.meta)
	}
	if e != nil && e.list == listB2 {
		delta := 1
		if c.b2.len() > 0 && c.b1.len() > c.b2.len() {
			delta = c.b1.len() / c.b2.len()
		}
		c.p = max(0, c.p-delta)
		c.replace(at, true)
		e.meta.pbn = c.allocPBN()
		e.meta.dirty = op == device.Write
		c.move(e, listT2)
		return c.finishMiss(at, req, &e.meta)
	}

	// Case IV: full miss.
	if c.t1.len()+c.b1.len() == c.capacity {
		if c.t1.len() < c.capacity {
			c.dropGhost(c.b1.back())
			c.replace(at, false)
		} else {
			// B1 empty, T1 full: evict T1's LRU outright.
			victim := c.entryOf(c.t1.back())
			c.demote(at, victim, listB1)
			c.dropGhost(&victim.meta)
		}
	} else if c.t1.len()+c.b1.len() < c.capacity {
		total := c.t1.len() + c.t2.len() + c.b1.len() + c.b2.len()
		if total >= c.capacity {
			if total == 2*c.capacity && c.b2.len() > 0 {
				c.dropGhost(c.b2.back())
			}
			c.replace(at, false)
		}
	}
	ne := &arcEntry{meta: blockMeta{lbn: lbn, pbn: c.allocPBN(), dirty: op == device.Write, tenant: req.Tenant}, list: listT1}
	c.table[lbn] = ne
	c.t1.pushFront(&ne.meta)
	return c.finishMiss(at, req, &ne.meta)
}

// finishMiss performs the device traffic for an allocation. Caller holds
// c.mu; it is released here.
func (c *arcCache) finishMiss(at time.Duration, req dss.Request, m *blockMeta) (time.Duration, bool) {
	op := req.Op
	pbn := m.pbn
	if op == device.Write {
		c.base.snap.WriteAllocs++
		c.mu.Unlock()
		return submitDev(c.ssdS, at, req, device.Write, pbn, 1), false
	}
	c.base.snap.ReadAllocs++
	lbn := m.lbn
	c.mu.Unlock()
	hddDone := submitDev(c.hddS, at, req, device.Read, lbn, 1)
	if c.asyncAlloc {
		c.ssdS.SubmitBackground(hddDone, device.Write, pbn, 1, req.Class, req.Tenant)
		return hddDone, false
	}
	return submitDev(c.ssdS, hddDone, req, device.Write, pbn, 1), false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Stats implements System.
func (c *arcCache) Stats() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base.snapshot(c.t1.len() + c.t2.len())
}

// ResetStats implements System.
func (c *arcCache) ResetStats() {
	c.mu.Lock()
	c.base.reset()
	c.mu.Unlock()
	c.grp.ResetStats()
}

// Mode implements System.
func (c *arcCache) Mode() Mode { return ARC }

// SSD implements System.
func (c *arcCache) SSD() *device.Device { return c.ssd }

// HDD implements System.
func (c *arcCache) HDD() *device.Device { return c.hdd }

// Sched implements System.
func (c *arcCache) Sched() *iosched.Group { return c.grp }

// lens reports (|T1|, |T2|, |B1|, |B2|, p) for white-box tests.
func (c *arcCache) lens() (int, int, int, int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t1.len(), c.t2.len(), c.b1.len(), c.b2.len(), c.p
}
