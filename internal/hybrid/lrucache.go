package hybrid

import (
	"sync"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/iosched"
)

// lruCache is the monitoring-based baseline of the evaluation: the SSD
// cache is managed as a single LRU stack. Every accessed block is
// admitted — including sequentially scanned data (the cache pollution
// Figure 5 demonstrates) — and request classes are recorded for
// statistics but never influence placement. TRIM commands are ignored,
// matching a legacy system where file deletion only changes file-system
// metadata (Section 4.2.3).
type lruCache struct {
	mu   sync.Mutex
	base statsBase

	ssd *device.Device
	hdd *device.Device
	lat time.Duration

	grp  *iosched.Group
	ssdS *iosched.Scheduler
	hddS *iosched.Scheduler

	capacity   int
	asyncAlloc bool

	table   map[int64]*blockMeta
	stack   lruList
	cached  int
	freePBN []int64
	nextPBN int64
}

func newLRUCache(cfg Config) *lruCache {
	c := &lruCache{
		base:       newStatsBase(LRU, cfg.Obs),
		ssd:        device.New(cfg.SSDSpec),
		hdd:        device.New(cfg.HDDSpec),
		lat:        cfg.TransportLat,
		capacity:   cfg.CacheBlocks,
		asyncAlloc: cfg.AsyncReadAlloc,
		table:      make(map[int64]*blockMeta),
	}
	c.grp, c.ssdS, c.hddS = attachCacheScheds(cfg, c.ssd, c.hdd)
	c.stack.init()
	return c
}

// Submit implements dss.Storage.
func (c *lruCache) Submit(at time.Duration, req dss.Request) time.Duration {
	at += c.lat
	if req.Kind == dss.Trim || req.Blocks <= 0 {
		// Legacy block interface: TRIM is not understood.
		return at
	}
	done := at
	var hits int64
	for i := 0; i < req.Blocks; i++ {
		t, hit := c.access(at, req, req.LBA+int64(i))
		if hit {
			hits++
		}
		if t > done {
			done = t
		}
	}
	c.mu.Lock()
	c.base.record(req.Class, req.Op, req.Blocks, hits)
	c.mu.Unlock()
	return done
}

func (c *lruCache) access(at time.Duration, req dss.Request, lbn int64) (time.Duration, bool) {
	op := req.Op
	c.mu.Lock()
	meta := c.table[lbn]
	if meta != nil {
		c.stack.moveToFront(meta)
		if op == device.Write {
			meta.dirty = true
		}
		pbn := meta.pbn
		c.mu.Unlock()
		return submitDev(c.ssdS, at, req, op, pbn, 1), true
	}

	// Miss: always allocate, evicting the LRU block if full.
	if c.cached >= c.capacity {
		victim := c.stack.back()
		if victim.dirty {
			// A class-blind cache does not know what it is destaging:
			// the write-back goes out unclassified.
			c.hddS.SubmitBackground(at, device.Write, victim.lbn, 1, dss.ClassNone, victim.tenant)
			c.base.snap.DirtyEvict++
			c.base.mDirtyEvict.Inc()
		}
		c.base.snap.Evictions++
		c.base.mEvict.Inc()
		c.stack.remove(victim)
		delete(c.table, victim.lbn)
		c.freePBN = append(c.freePBN, victim.pbn)
		c.cached--
	}
	var pbn int64
	if n := len(c.freePBN); n > 0 {
		pbn = c.freePBN[n-1]
		c.freePBN = c.freePBN[:n-1]
	} else {
		pbn = c.nextPBN
		c.nextPBN++
	}
	meta = &blockMeta{lbn: lbn, pbn: pbn, dirty: op == device.Write, tenant: req.Tenant}
	c.table[lbn] = meta
	c.stack.pushFront(meta)
	c.cached++
	if op == device.Write {
		c.base.snap.WriteAllocs++
	} else {
		c.base.snap.ReadAllocs++
	}
	c.mu.Unlock()

	if op == device.Write {
		return submitDev(c.ssdS, at, req, device.Write, pbn, 1), false
	}
	hddDone := submitDev(c.hddS, at, req, device.Read, lbn, 1)
	if c.asyncAlloc {
		c.ssdS.SubmitBackground(hddDone, device.Write, pbn, 1, req.Class, req.Tenant)
		return hddDone, false
	}
	return submitDev(c.ssdS, hddDone, req, device.Write, pbn, 1), false
}

// Stats implements System.
func (c *lruCache) Stats() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.base.snapshot(c.cached)
}

// ResetStats implements System.
func (c *lruCache) ResetStats() {
	c.mu.Lock()
	c.base.reset()
	c.mu.Unlock()
	c.grp.ResetStats()
}

// Mode implements System.
func (c *lruCache) Mode() Mode { return LRU }

// SSD implements System.
func (c *lruCache) SSD() *device.Device { return c.ssd }

// HDD implements System.
func (c *lruCache) HDD() *device.Device { return c.hdd }

// Sched implements System.
func (c *lruCache) Sched() *iosched.Group { return c.grp }
