package hybrid

import (
	"math/rand"
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
)

func newTestCache(t *testing.T, blocks int) *priorityCache {
	t.Helper()
	sys, err := New(Config{Mode: HStorage, CacheBlocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	return sys.(*priorityCache)
}

func read(c dss.Class, lba int64, blocks int) dss.Request {
	return dss.Request{Op: device.Read, LBA: lba, Blocks: blocks, Class: c}
}

func write(c dss.Class, lba int64, blocks int) dss.Request {
	return dss.Request{Op: device.Write, LBA: lba, Blocks: blocks, Class: c}
}

func TestSequentialNeverCached(t *testing.T) {
	c := newTestCache(t, 64)
	space := dss.DefaultPolicySpace()
	c.Submit(0, read(space.Sequential(), 0, 32))
	if got := c.Stats().CachedBlocks; got != 0 {
		t.Fatalf("sequential read cached %d blocks", got)
	}
	if c.Stats().Bypasses != 32 {
		t.Fatalf("bypasses = %d, want 32", c.Stats().Bypasses)
	}
}

func TestRandomReadAllocates(t *testing.T) {
	c := newTestCache(t, 64)
	c.Submit(0, read(2, 0, 8))
	s := c.Stats()
	if s.CachedBlocks != 8 || s.ReadAllocs != 8 {
		t.Fatalf("cached=%d readAllocs=%d, want 8/8", s.CachedBlocks, s.ReadAllocs)
	}
	// Second access: all hits.
	c.Submit(0, read(2, 0, 8))
	if got := c.Stats().Hits; got != 8 {
		t.Fatalf("hits = %d, want 8", got)
	}
}

func TestTempWriteThenReadHits(t *testing.T) {
	c := newTestCache(t, 64)
	space := dss.DefaultPolicySpace()
	c.Submit(0, write(space.Temporary(), 100, 16))
	c.Submit(0, read(space.Temporary(), 100, 16))
	s := c.Stats()
	cs := s.Class(space.Temporary())
	if cs.ReadHits != 16 {
		t.Fatalf("temp read hits = %d, want 16 (100%% per Section 6.3.3)", cs.ReadHits)
	}
}

func TestSelectiveEvictionOrder(t *testing.T) {
	// Fill with priority 5 blocks, then priority 2 arrivals must evict
	// them (5 >= 2); a further priority-6 arrival must be refused
	// (all cached blocks outrank it) and bypass.
	c := newTestCache(t, 4)
	c.Submit(0, read(5, 0, 4))
	if c.Stats().CachedBlocks != 4 {
		t.Fatal("setup failed")
	}
	c.Submit(0, read(2, 100, 2))
	s := c.Stats()
	if s.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", s.Evictions)
	}
	lens := c.GroupLens()
	if lens[2] != 2 || lens[5] != 2 {
		t.Fatalf("groups %v, want 2 each in groups 2 and 5", lens)
	}

	// Now cache holds prios {2,2,5,5}. Incoming priority 6 must bypass:
	// the eviction candidate group is 5, and 5 < 6.
	before := c.Stats().Bypasses
	c.Submit(0, read(6, 200, 1))
	if c.Stats().Bypasses != before+1 {
		t.Fatalf("low-priority arrival was not refused")
	}
	if c.Stats().CachedBlocks != 4 {
		t.Fatalf("cache content changed: %d", c.Stats().CachedBlocks)
	}
}

func TestLRUWithinGroup(t *testing.T) {
	c := newTestCache(t, 3)
	c.Submit(0, read(3, 0, 1))
	c.Submit(0, read(3, 1, 1))
	c.Submit(0, read(3, 2, 1))
	// Touch block 0 so block 1 becomes the group's LRU.
	c.Submit(0, read(3, 0, 1))
	// New arrival evicts the least-recently-used member of group 3.
	c.Submit(0, read(3, 50, 1))
	if _, ok := c.table[1]; ok {
		t.Fatal("LRU victim (block 1) still cached")
	}
	if _, ok := c.table[0]; !ok {
		t.Fatal("recently used block 0 was evicted")
	}
}

func TestNonEvictionHitPreservesPriority(t *testing.T) {
	c := newTestCache(t, 8)
	space := dss.DefaultPolicySpace()
	c.Submit(0, read(2, 0, 1))
	// A sequential request touching the cached block must not change its
	// priority (Rule 1: "non-caching and non-eviction").
	c.Submit(0, read(space.Sequential(), 0, 1))
	if got := c.table[0].class; got != 2 {
		t.Fatalf("priority changed to %d by a sequential hit", got)
	}
	if c.Stats().Hits != 1 {
		t.Fatalf("sequential request on cached block should still hit (got %d)", c.Stats().Hits)
	}
}

func TestEvictionClassDemotes(t *testing.T) {
	c := newTestCache(t, 8)
	space := dss.DefaultPolicySpace()
	c.Submit(0, read(2, 0, 1))
	c.Submit(0, read(2, 1, 1))
	// "Non-caching and eviction" read: block 0 becomes evictable first.
	c.Submit(0, read(space.Eviction(), 0, 1))
	if got := c.table[0].class; got != int(space.Eviction()) {
		t.Fatalf("block not demoted: group %d", got)
	}
	// Fill the cache; the demoted block must go first.
	c.Submit(0, read(4, 100, 7))
	if _, ok := c.table[0]; ok {
		t.Fatal("demoted block survived eviction pressure")
	}
	if _, ok := c.table[1]; !ok {
		t.Fatal("untouched priority-2 block was evicted before the demoted one")
	}
}

func TestEvictionClassDoesNotAdmit(t *testing.T) {
	c := newTestCache(t, 8)
	space := dss.DefaultPolicySpace()
	c.Submit(0, read(space.Eviction(), 0, 4))
	if c.Stats().CachedBlocks != 0 {
		t.Fatal("eviction-class read admitted blocks")
	}
}

func TestReallocationBetweenPriorities(t *testing.T) {
	c := newTestCache(t, 8)
	c.Submit(0, read(4, 0, 1))
	c.Submit(0, read(2, 0, 1)) // re-access at higher priority
	if got := c.table[0].class; got != 2 {
		t.Fatalf("block in group %d, want re-allocated to 2", got)
	}
	if c.Stats().Reallocs != 1 {
		t.Fatalf("reallocs = %d, want 1", c.Stats().Reallocs)
	}
}

func TestWriteBufferFlush(t *testing.T) {
	// Capacity 100, b = 10% -> flush when write-buffer occupancy
	// exceeds 10 blocks.
	c := newTestCache(t, 100)
	for i := int64(0); i < 10; i++ {
		c.Submit(0, write(dss.ClassWriteBuffer, i, 1))
	}
	if c.Stats().WBFlushes != 0 {
		t.Fatalf("flushed before exceeding b")
	}
	c.Submit(0, write(dss.ClassWriteBuffer, 10, 1))
	s := c.Stats()
	if s.WBFlushes != 1 {
		t.Fatalf("WBFlushes = %d, want 1", s.WBFlushes)
	}
	if c.wbBlocks != 0 {
		t.Fatalf("write buffer not emptied: %d", c.wbBlocks)
	}
	// Flushed dirty blocks must have been written to the HDD once the
	// deferred destages are released; adjacent destages coalesce, so
	// count blocks rather than accesses.
	c.Sched().Drain()
	if w := c.HDD().Stats().BlocksWrite; w != 11 {
		t.Fatalf("HDD blocks written = %d, want 11 (flushed buffer)", w)
	}
}

func TestWriteBufferWinsOverAnyPriority(t *testing.T) {
	c := newTestCache(t, 40)
	c.Submit(0, read(2, 0, 40)) // fill with the highest random priority
	c.Submit(0, write(dss.ClassWriteBuffer, 100, 1))
	if c.Stats().Evictions != 1 {
		t.Fatalf("write buffer failed to claim space: evictions=%d", c.Stats().Evictions)
	}
	if _, ok := c.table[100]; !ok {
		t.Fatal("update block not buffered")
	}
	if c.GroupLens()[wbGroup] != 1 {
		t.Fatalf("write buffer group %v", c.GroupLens())
	}
}

func TestTrimInvalidates(t *testing.T) {
	c := newTestCache(t, 64)
	space := dss.DefaultPolicySpace()
	c.Submit(0, write(space.Temporary(), 0, 16))
	if c.Stats().CachedBlocks != 16 {
		t.Fatal("setup failed")
	}
	hddWrites := c.HDD().Stats().Writes
	c.Submit(0, dss.Request{Kind: dss.Trim, LBA: 0, Blocks: 16, Class: space.Eviction()})
	s := c.Stats()
	if s.CachedBlocks != 0 || s.Trimmed != 16 {
		t.Fatalf("cached=%d trimmed=%d, want 0/16", s.CachedBlocks, s.Trimmed)
	}
	// Dead temporary data must not be written back.
	if c.HDD().Stats().Writes != hddWrites {
		t.Fatal("TRIM wrote dead blocks to the HDD")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := newTestCache(t, 2)
	c.Submit(0, write(3, 0, 2)) // two dirty blocks
	c.Submit(0, read(2, 100, 1))
	s := c.Stats()
	if s.DirtyEvict != 1 {
		t.Fatalf("dirtyEvict = %d, want 1", s.DirtyEvict)
	}
	c.Sched().Drain() // release the deferred destage
	if c.HDD().Stats().Writes != 1 {
		t.Fatalf("HDD writes = %d, want 1", c.HDD().Stats().Writes)
	}
}

func TestUnclassifiedBypasses(t *testing.T) {
	c := newTestCache(t, 8)
	c.Submit(0, read(dss.ClassNone, 0, 4))
	if c.Stats().CachedBlocks != 0 {
		t.Fatal("unclassified request was cached")
	}
}

// Invariant check used by the property test.
func (c *priorityCache) checkInvariants(t *testing.T) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cached > c.capacity {
		t.Fatalf("occupancy %d exceeds capacity %d", c.cached, c.capacity)
	}
	total := 0
	for _, g := range c.groups {
		total += g.len()
	}
	if total != c.cached || total != len(c.table) {
		t.Fatalf("group total %d, cached %d, table %d diverge", total, c.cached, len(c.table))
	}
	if c.groups[wbGroup].len() != c.wbBlocks {
		t.Fatalf("wbBlocks %d != wb group %d", c.wbBlocks, c.groups[wbGroup].len())
	}
	seen := map[int64]bool{}
	for p, g := range c.groups {
		for b := g.root.next; b != &g.root; b = b.next {
			if b.class != p {
				t.Fatalf("block %d in group %d tagged %d", b.lbn, p, b.class)
			}
			if seen[b.lbn] {
				t.Fatalf("block %d in two groups", b.lbn)
			}
			seen[b.lbn] = true
			if c.table[b.lbn] != b {
				t.Fatalf("table and list disagree for %d", b.lbn)
			}
		}
	}
}

// TestRandomizedInvariants hammers the cache with a random request mix
// and checks structural invariants throughout.
func TestRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := newTestCache(t, 32)
	space := dss.DefaultPolicySpace()
	classes := []dss.Class{
		space.Temporary(), 2, 3, 4, 5, 6,
		space.Sequential(), space.Eviction(), dss.ClassWriteBuffer, dss.ClassNone,
	}
	var at time.Duration
	for i := 0; i < 5000; i++ {
		cl := classes[rng.Intn(len(classes))]
		lba := int64(rng.Intn(128))
		blocks := 1 + rng.Intn(4)
		var req dss.Request
		switch rng.Intn(5) {
		case 0:
			req = write(cl, lba, blocks)
		case 1:
			req = dss.Request{Kind: dss.Trim, LBA: lba, Blocks: blocks, Class: space.Eviction()}
		default:
			req = read(cl, lba, blocks)
		}
		at = c.Submit(at, req)
		if i%100 == 0 {
			c.checkInvariants(t)
		}
	}
	c.checkInvariants(t)
	s := c.Stats()
	if s.Hits == 0 {
		t.Fatal("random mix produced no cache hits at all")
	}
}

// TestCompactionPreservesResidency: compaction sweeping over blocks
// some foreground class cached neither admits new blocks (non-caching)
// nor disturbs the residency the foreground class earned — and, being
// a negative class outside the group array, it must not panic the
// reallocation switch.
func TestCompactionPreservesResidency(t *testing.T) {
	c := newTestCache(t, 64)
	c.Submit(0, read(2, 0, 8))
	if got := c.Stats().CachedBlocks; got != 8 {
		t.Fatalf("setup cached %d blocks", got)
	}
	// Compaction rereads the cached range and writes a fresh one.
	c.Submit(0, read(dss.ClassCompaction, 0, 8))
	c.Submit(0, write(dss.ClassCompaction, 100, 8))
	s := c.Stats()
	if s.CachedBlocks != 8 {
		t.Fatalf("compaction changed residency: %d cached", s.CachedBlocks)
	}
	if s.Reallocs != 0 {
		t.Fatalf("compaction reallocated %d blocks", s.Reallocs)
	}
	// The foreground blocks still hit at their original priority.
	c.Submit(0, read(2, 0, 8))
	if got := c.Stats().Hits; got < 16 {
		t.Fatalf("hits = %d, want >= 16", got)
	}
}
