package hybrid

import (
	"testing"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/iosched"
)

// prefetchSystem builds an HStorage system with prefetch-to-cache
// enabled and a small cache.
func prefetchSystem(t *testing.T, cacheBlocks int) (System, *priorityCache) {
	t.Helper()
	sys, err := New(Config{
		Mode:            HStorage,
		CacheBlocks:     cacheBlocks,
		CachePrefetched: true,
		Sched:           iosched.Config{Readahead: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys, sys.(*priorityCache)
}

// Scheduler readahead completions may only ever fill spare cache
// capacity: with the cache full of pinned log blocks, a prefetching scan
// admits nothing, evicts nothing, and the log group is untouched.
func TestPrefetchNeverEvictsPinnedLog(t *testing.T) {
	sys, c := prefetchSystem(t, 8)
	for i := 0; i < 8; i++ {
		sys.Submit(0, dss.Request{Op: device.Write, LBA: 1000 + int64(i), Blocks: 1, Class: dss.ClassLog})
	}
	seq := dss.DefaultPolicySpace().Sequential()
	at := 20 * time.Millisecond
	for i := 0; i < 4; i++ {
		// Each Submit also pulls the previous grant's prefetch
		// completions into the admission path.
		at = sys.Submit(at, dss.Request{Op: device.Read, LBA: int64(64 * i), Blocks: 1, Class: seq})
	}
	sys.Submit(at, dss.Request{Op: device.Read, LBA: 4 * 64, Blocks: 1, Class: seq})

	snap := sys.Stats()
	if snap.Evictions != 0 {
		t.Fatalf("prefetch evicted %d blocks", snap.Evictions)
	}
	if snap.Prefetched != 0 {
		t.Fatalf("prefetch admitted %d blocks into a full cache", snap.Prefetched)
	}
	if got := c.GroupLens()[logGroup]; got != 8 {
		t.Fatalf("log group has %d blocks, want 8", got)
	}
	if snap.CachedBlocks != 8 {
		t.Fatalf("cache holds %d blocks, want 8", snap.CachedBlocks)
	}
}

// A multi-block sequential-class read of an uncached range takes the
// whole-run bypass fast path: a single coalesced HDD submission with
// per-block bypass accounting, and no SSD traffic at all (the cache
// device must never see — or read ahead over — its slot space for a
// bypassed scan).
func TestSequentialRunFastPath(t *testing.T) {
	sys, err := New(Config{Mode: HStorage, CacheBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	seq := dss.DefaultPolicySpace().Sequential()
	done := sys.Submit(0, dss.Request{Op: device.Read, LBA: 100, Blocks: 48, Class: seq})
	if done <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	snap := sys.Stats()
	if snap.Bypasses != 48 {
		t.Fatalf("Bypasses = %d, want 48", snap.Bypasses)
	}
	cs := snap.Class(seq)
	if cs.Requests != 1 || cs.AccessedBlocks != 48 || cs.Hits != 0 {
		t.Fatalf("class stats %+v", cs)
	}
	hdd := sys.HDD().Stats()
	if hdd.BlocksRead < 48 {
		t.Fatalf("HDD read %d blocks, want >= 48", hdd.BlocksRead)
	}
	if ssd := sys.SSD().Stats(); ssd.Reads != 0 && ssd.Writes != 0 {
		t.Fatalf("bypassed scan touched the SSD: %+v", ssd)
	}
}

// With spare capacity, prefetched blocks are admitted into the
// "non-caching and eviction" group — still without evicting anything.
func TestPrefetchFillsSpareCapacityOnly(t *testing.T) {
	sys, c := prefetchSystem(t, 24)
	for i := 0; i < 8; i++ {
		sys.Submit(0, dss.Request{Op: device.Write, LBA: 1000 + int64(i), Blocks: 1, Class: dss.ClassLog})
	}
	seq := dss.DefaultPolicySpace().Sequential()
	at := 20 * time.Millisecond
	for i := 0; i < 4; i++ {
		at = sys.Submit(at, dss.Request{Op: device.Read, LBA: int64(64 * i), Blocks: 1, Class: seq})
	}
	sys.Submit(at, dss.Request{Op: device.Read, LBA: 4 * 64, Blocks: 1, Class: seq})

	snap := sys.Stats()
	if snap.Prefetched == 0 {
		t.Fatal("no prefetched blocks admitted despite spare capacity")
	}
	if snap.Evictions != 0 {
		t.Fatalf("prefetch admission evicted %d blocks", snap.Evictions)
	}
	if got := c.GroupLens()[logGroup]; got != 8 {
		t.Fatalf("log group has %d blocks, want 8", got)
	}
	if snap.CachedBlocks > 24 {
		t.Fatalf("cache over capacity: %d", snap.CachedBlocks)
	}
	evictGroup := int(dss.DefaultPolicySpace().Eviction())
	if got := c.GroupLens()[evictGroup]; int64(got) != snap.Prefetched {
		t.Fatalf("prefetched blocks in group %d: %d, counter %d", evictGroup, got, snap.Prefetched)
	}
}
