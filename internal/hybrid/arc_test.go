package hybrid

import (
	"math/rand"
	"testing"
	"time"

	"hstoragedb/internal/dss"
)

func newTestARC(t *testing.T, blocks int) *arcCache {
	t.Helper()
	sys, err := New(Config{Mode: ARC, CacheBlocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	return sys.(*arcCache)
}

func (c *arcCache) checkInvariants(t *testing.T) {
	t.Helper()
	t1, t2, b1, b2, p := c.lens()
	if t1+t2 > c.capacity {
		t.Fatalf("residents %d exceed capacity %d", t1+t2, c.capacity)
	}
	if t1+b1 > c.capacity {
		t.Fatalf("|T1|+|B1| = %d exceeds c", t1+b1)
	}
	if t1+t2+b1+b2 > 2*c.capacity {
		t.Fatalf("directory %d exceeds 2c", t1+t2+b1+b2)
	}
	if p < 0 || p > c.capacity {
		t.Fatalf("target p=%d out of range", p)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.table) != t1+t2+b1+b2 {
		t.Fatalf("table %d vs lists %d", len(c.table), t1+t2+b1+b2)
	}
}

func TestARCBasicHit(t *testing.T) {
	c := newTestARC(t, 16)
	c.Submit(0, read(2, 0, 1))
	c.Submit(0, read(2, 0, 1))
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", s.Hits, s.Misses)
	}
	// A re-referenced block promotes to T2.
	t1, t2, _, _, _ := c.lens()
	if t1 != 0 || t2 != 1 {
		t.Fatalf("T1=%d T2=%d, want 0/1", t1, t2)
	}
}

func TestARCScanResistance(t *testing.T) {
	// A long one-shot scan must not flush the re-referenced working set:
	// ARC's point over LRU.
	c := newTestARC(t, 32)
	// Hot set: 8 blocks, touched twice (into T2).
	for round := 0; round < 2; round++ {
		for i := int64(0); i < 8; i++ {
			c.Submit(0, read(2, i, 1))
		}
	}
	// One-shot scan of 200 cold blocks.
	for i := int64(1000); i < 1200; i++ {
		c.Submit(0, read(2, i, 1))
	}
	c.checkInvariants(t)
	// Hot set must still be resident.
	c.ResetStats()
	for i := int64(0); i < 8; i++ {
		c.Submit(0, read(2, i, 1))
	}
	if got := c.Stats().Hits; got < 6 {
		t.Fatalf("hot set lost to the scan: %d/8 hits", got)
	}
}

func TestARCGhostHitAdaptsP(t *testing.T) {
	c := newTestARC(t, 4)
	// Promote two blocks to T2 so REPLACE has frequency pages to keep.
	for round := 0; round < 2; round++ {
		for i := int64(100); i < 102; i++ {
			c.Submit(0, read(2, i, 1))
		}
	}
	// Stream new blocks: REPLACE demotes T1's LRU into B1 ghosts.
	for i := int64(0); i < 6; i++ {
		c.Submit(0, read(2, i, 1))
	}
	_, _, b1, _, p0 := c.lens()
	if b1 == 0 {
		t.Fatal("no B1 ghosts after overflow with a populated T2")
	}
	// Re-access a current ghost: p must grow (favor recency).
	c.mu.Lock()
	var ghost int64 = -1
	for lbn, e := range c.table {
		if e.list == listB1 {
			ghost = lbn
			break
		}
	}
	c.mu.Unlock()
	if ghost < 0 {
		t.Fatal("no B1 entry found in the table")
	}
	c.Submit(0, read(2, ghost, 1))
	_, _, _, _, p1 := c.lens()
	if p1 <= p0 {
		t.Fatalf("p did not grow on B1 hit: %d -> %d", p0, p1)
	}
	c.checkInvariants(t)
}

func TestARCDirtyWriteBack(t *testing.T) {
	c := newTestARC(t, 2)
	c.Submit(0, write(2, 0, 2))
	c.Submit(0, read(2, 100, 1))
	c.Submit(0, read(2, 101, 1))
	if c.Stats().DirtyEvict == 0 {
		t.Fatal("dirty block evicted without write-back")
	}
	c.Sched().Drain() // release the deferred destage
	if c.HDD().Stats().Writes == 0 {
		t.Fatal("no HDD write for dirty eviction")
	}
}

func TestARCIgnoresTrim(t *testing.T) {
	c := newTestARC(t, 16)
	space := dss.DefaultPolicySpace()
	c.Submit(0, write(space.Temporary(), 0, 4))
	c.Submit(0, dss.Request{Kind: dss.Trim, LBA: 0, Blocks: 4, Class: space.Eviction()})
	if c.Stats().CachedBlocks != 4 {
		t.Fatal("ARC honoured TRIM; the monitoring baseline must not")
	}
}

func TestARCRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := newTestARC(t, 24)
	var at time.Duration
	for i := 0; i < 8000; i++ {
		lba := int64(rng.Intn(96))
		if rng.Intn(4) == 0 {
			at = c.Submit(at, write(2, lba, 1+rng.Intn(3)))
		} else {
			at = c.Submit(at, read(2, lba, 1+rng.Intn(3)))
		}
		if i%500 == 0 {
			c.checkInvariants(t)
		}
	}
	c.checkInvariants(t)
	if c.Stats().Hits == 0 {
		t.Fatal("no hits on a 96-block working set with a 24-block cache")
	}
}

// TestARCBeatsLRUOnScanMix demonstrates why ARC is a stronger baseline:
// a mixed workload of a hot set plus repeated long scans.
func TestARCBeatsLRUOnScanMix(t *testing.T) {
	run := func(mode Mode) float64 {
		sys, err := New(Config{Mode: mode, CacheBlocks: 64})
		if err != nil {
			t.Fatal(err)
		}
		var at time.Duration
		for round := 0; round < 30; round++ {
			// Hot set touched twice per round (a real working set).
			for pass := 0; pass < 2; pass++ {
				for i := int64(0); i < 32; i++ {
					at = sys.Submit(at, read(2, i, 1))
				}
			}
			for i := int64(0); i < 128; i++ { // scan (one-shot region)
				at = sys.Submit(at, read(2, 10000+int64(round)*128+i, 1))
			}
		}
		return sys.Stats().HitRatio()
	}
	arc := run(ARC)
	lru := run(LRU)
	if arc <= lru {
		t.Fatalf("ARC hit ratio %.3f not above LRU %.3f on scan mix", arc, lru)
	}
}
