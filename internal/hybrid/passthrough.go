package hybrid

import (
	"sync"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
)

// passthrough serves every request from a single device: the HDD-only
// baseline and the SSD-only ideal case of the evaluation. Classes are
// recorded (so Figure 4's request-diversity counts work under any mode)
// but have no effect on data placement. TRIM commands complete instantly.
type passthrough struct {
	mu   sync.Mutex
	base statsBase
	dev  *device.Device
	ssd  bool
	lat  time.Duration
}

func newPassthrough(cfg Config, ssd bool) *passthrough {
	spec := cfg.HDDSpec
	if ssd {
		spec = cfg.SSDSpec
	}
	mode := HDDOnly
	if ssd {
		mode = SSDOnly
	}
	return &passthrough{
		base: newStatsBase(mode),
		dev:  device.New(spec),
		ssd:  ssd,
		lat:  cfg.TransportLat,
	}
}

// Submit implements dss.Storage.
func (p *passthrough) Submit(at time.Duration, req dss.Request) time.Duration {
	at += p.lat
	if req.Kind == dss.Trim || req.Blocks <= 0 {
		return at
	}
	done := p.dev.Access(at, req.Op, req.LBA, req.Blocks)
	p.mu.Lock()
	p.base.record(req.Class, req.Op, req.Blocks, 0)
	if p.ssd {
		// Treat an SSD-only access as a "hit" for ratio purposes: the
		// paper's SSD-only column has no cache at all, so we only keep
		// block counters and leave hits at zero.
	}
	p.mu.Unlock()
	return done
}

// Stats implements System.
func (p *passthrough) Stats() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base.snapshot(0)
}

// ResetStats implements System.
func (p *passthrough) ResetStats() {
	p.mu.Lock()
	p.base.reset()
	p.mu.Unlock()
}

// Mode implements System.
func (p *passthrough) Mode() Mode { return p.base.mode }

// SSD implements System.
func (p *passthrough) SSD() *device.Device {
	if p.ssd {
		return p.dev
	}
	return nil
}

// HDD implements System.
func (p *passthrough) HDD() *device.Device {
	if p.ssd {
		return nil
	}
	return p.dev
}
