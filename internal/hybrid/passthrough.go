package hybrid

import (
	"sync"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/iosched"
)

// passthrough serves every request from a single device: the HDD-only
// baseline and the SSD-only ideal case of the evaluation. Classes are
// recorded (so Figure 4's request-diversity counts work under any mode)
// but have no effect on data placement; they do, however, reach the
// device scheduler, so even the passthrough configurations dispatch by
// class priority. TRIM commands complete instantly.
type passthrough struct {
	mu   sync.Mutex
	base statsBase
	dev  *device.Device
	ssd  bool
	lat  time.Duration

	grp  *iosched.Group
	devS *iosched.Scheduler
}

func newPassthrough(cfg Config, ssd bool) *passthrough {
	spec := cfg.HDDSpec
	if ssd {
		spec = cfg.SSDSpec
	}
	mode := HDDOnly
	if ssd {
		mode = SSDOnly
	}
	p := &passthrough{
		base: newStatsBase(mode, cfg.Obs),
		dev:  device.New(spec),
		ssd:  ssd,
		lat:  cfg.TransportLat,
		grp:  iosched.NewGroup(cfg.Sched),
	}
	p.devS = p.grp.Attach(p.dev, cfg.Policy.Sequential())
	return p
}

// Submit implements dss.Storage.
func (p *passthrough) Submit(at time.Duration, req dss.Request) time.Duration {
	at += p.lat
	if req.Kind == dss.Trim || req.Blocks <= 0 {
		return at
	}
	done := submitDev(p.devS, at, req, req.Op, req.LBA, req.Blocks)
	p.mu.Lock()
	p.base.record(req.Class, req.Op, req.Blocks, 0)
	p.mu.Unlock()
	return done
}

// Stats implements System.
func (p *passthrough) Stats() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base.snapshot(0)
}

// ResetStats implements System.
func (p *passthrough) ResetStats() {
	p.mu.Lock()
	p.base.reset()
	p.mu.Unlock()
	p.grp.ResetStats()
}

// Mode implements System.
func (p *passthrough) Mode() Mode { return p.base.mode }

// SSD implements System.
func (p *passthrough) SSD() *device.Device {
	if p.ssd {
		return p.dev
	}
	return nil
}

// HDD implements System.
func (p *passthrough) HDD() *device.Device {
	if p.ssd {
		return nil
	}
	return p.dev
}

// Sched implements System.
func (p *passthrough) Sched() *iosched.Group { return p.grp }
