package hybrid

import (
	"testing"

	"hstoragedb/internal/dss"
)

func newTestLRU(t *testing.T, blocks int) *lruCache {
	t.Helper()
	sys, err := New(Config{Mode: LRU, CacheBlocks: blocks})
	if err != nil {
		t.Fatal(err)
	}
	return sys.(*lruCache)
}

func TestLRUCachesEverything(t *testing.T) {
	c := newTestLRU(t, 64)
	space := dss.DefaultPolicySpace()
	// Unlike the priority cache, LRU admits sequential blocks — the
	// cache pollution of Figure 5.
	c.Submit(0, read(space.Sequential(), 0, 16))
	if got := c.Stats().CachedBlocks; got != 16 {
		t.Fatalf("LRU cached %d sequential blocks, want 16", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newTestLRU(t, 3)
	c.Submit(0, read(2, 0, 1))
	c.Submit(0, read(2, 1, 1))
	c.Submit(0, read(2, 2, 1))
	c.Submit(0, read(2, 0, 1)) // touch 0
	c.Submit(0, read(2, 9, 1)) // evicts 1 (LRU)
	if _, ok := c.table[1]; ok {
		t.Fatal("LRU victim still cached")
	}
	if _, ok := c.table[0]; !ok {
		t.Fatal("MRU block evicted")
	}
}

func TestLRUIgnoresTrim(t *testing.T) {
	c := newTestLRU(t, 64)
	space := dss.DefaultPolicySpace()
	c.Submit(0, write(space.Temporary(), 0, 8))
	c.Submit(0, dss.Request{Kind: dss.Trim, LBA: 0, Blocks: 8, Class: space.Eviction()})
	// Legacy behaviour: obsolete temporary data stays in cache
	// (Section 4.2.3's motivation for TRIM).
	if got := c.Stats().CachedBlocks; got != 8 {
		t.Fatalf("TRIM affected the LRU cache: %d cached", got)
	}
	if c.Stats().Trimmed != 0 {
		t.Fatal("LRU recorded a trim")
	}
}

func TestLRUDirtyWriteBack(t *testing.T) {
	c := newTestLRU(t, 2)
	c.Submit(0, write(2, 0, 2))
	c.Submit(0, read(2, 100, 1)) // evicts a dirty block
	if c.Stats().DirtyEvict != 1 {
		t.Fatalf("dirtyEvict = %d", c.Stats().DirtyEvict)
	}
	c.Sched().Drain() // release the deferred destage
	if c.HDD().Stats().Writes != 1 {
		t.Fatalf("HDD writes = %d", c.HDD().Stats().Writes)
	}
}

func TestLRURecordsClasses(t *testing.T) {
	c := newTestLRU(t, 64)
	c.Submit(0, read(3, 0, 4))
	c.Submit(0, read(3, 0, 4))
	cs := c.Stats().Class(3)
	if cs.AccessedBlocks != 8 || cs.Hits != 4 {
		t.Fatalf("class stats %+v", cs)
	}
}

func TestPassthroughModes(t *testing.T) {
	for _, mode := range []Mode{HDDOnly, SSDOnly} {
		sys, err := New(Config{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		done := sys.Submit(0, read(2, 0, 4))
		if done <= 0 {
			t.Fatalf("%v: request took no time", mode)
		}
		s := sys.Stats()
		if s.Class(2).AccessedBlocks != 4 {
			t.Fatalf("%v: class stats not recorded", mode)
		}
		if mode == HDDOnly && (sys.HDD() == nil || sys.SSD() != nil) {
			t.Fatalf("HDDOnly devices wrong")
		}
		if mode == SSDOnly && (sys.SSD() == nil || sys.HDD() != nil) {
			t.Fatalf("SSDOnly devices wrong")
		}
		// TRIM is a no-op.
		if got := sys.Submit(0, dss.Request{Kind: dss.Trim, LBA: 0, Blocks: 4}); got != 0 {
			t.Fatalf("%v: trim took %v", mode, got)
		}
	}
}

func TestModeValidation(t *testing.T) {
	if _, err := New(Config{Mode: LRU}); err == nil {
		t.Fatal("LRU without cache size accepted")
	}
	if _, err := New(Config{Mode: HStorage}); err == nil {
		t.Fatal("HStorage without cache size accepted")
	}
	bad := Config{Mode: HStorage, CacheBlocks: 16}
	bad.Policy = dssSpaceBad()
	if _, err := New(bad); err == nil {
		t.Fatal("invalid policy space accepted")
	}
}

func dssSpaceBad() (p dss.PolicySpace) {
	p = dss.DefaultPolicySpace()
	p.RandHigh = p.N + 3
	return p
}

func TestSnapshotFormatting(t *testing.T) {
	c := newTestCache(t, 16)
	c.Submit(0, read(2, 0, 4))
	c.Submit(0, read(2, 0, 4))
	s := c.Stats()
	if s.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %v, want 0.5", s.HitRatio())
	}
	if str := s.String(); len(str) == 0 {
		t.Fatal("empty snapshot rendering")
	}
	c.ResetStats()
	if c.Stats().Hits != 0 {
		t.Fatal("reset did not clear hits")
	}
	// Cache contents survive a stats reset.
	if c.Stats().CachedBlocks != 4 {
		t.Fatalf("reset dropped cache contents")
	}
}
