// Package hybrid implements the hybrid storage system of hStorage-DB's
// case study (Section 5): a two-level hierarchy with an SSD cache at level
// one and an HDD at level two, managed either by the paper's
// priority-based selective allocation/eviction (PriorityCache) or by the
// classical LRU baseline (LRUCache). Passthrough configurations (HDDOnly,
// SSDOnly) provide the evaluation's lower and upper bounds.
package hybrid

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hstoragedb/internal/device"
	"hstoragedb/internal/dss"
	"hstoragedb/internal/iosched"
	"hstoragedb/internal/obs"
)

// Mode selects the storage configuration used by the evaluation
// (Section 6.3 runs every query under all four).
type Mode int

const (
	// HDDOnly serves every request from the hard disk.
	HDDOnly Mode = iota
	// LRU manages the SSD cache with the classical LRU algorithm,
	// ignoring request classes.
	LRU
	// HStorage manages the SSD cache with priority-based selective
	// allocation and selective eviction.
	HStorage
	// SSDOnly serves every request from the SSD (the paper's ideal case).
	SSDOnly
	// ARC manages the SSD cache with the adaptive replacement cache
	// (Megiddo & Modha, FAST 2003) — an extension baseline beyond the
	// paper's LRU, representing the stronger monitoring-based policies
	// its related-work section cites.
	ARC
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case HDDOnly:
		return "HDD-only"
	case LRU:
		return "LRU"
	case HStorage:
		return "hStorage-DB"
	case SSDOnly:
		return "SSD-only"
	case ARC:
		return "ARC"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Modes lists all four configurations in the order the paper plots them.
func Modes() []Mode { return []Mode{HDDOnly, LRU, HStorage, SSDOnly} }

// Config describes a storage system to build.
type Config struct {
	Mode Mode

	// CacheBlocks is the SSD cache capacity in blocks. Ignored by the
	// passthrough modes.
	CacheBlocks int

	// Policy is the QoS policy space; zero value means
	// dss.DefaultPolicySpace(). Only HStorage consults it.
	Policy dss.PolicySpace

	// SSDSpec/HDDSpec override the device models; zero values mean
	// Intel320/Cheetah15K.
	SSDSpec device.Spec
	HDDSpec device.Spec

	// TransportLat is a per-request transport overhead (the paper's
	// iSCSI/10GbE hop). Applied to every submitted request.
	TransportLat time.Duration

	// AsyncReadAlloc, when true, places read-allocated blocks into the
	// cache off the critical path (the paper's "asynchronous read
	// allocation" footnote). The default (false) is synchronous
	// allocation, as in the prototype.
	AsyncReadAlloc bool

	// Sched parameterizes the per-device QoS I/O scheduler every
	// configuration routes its accesses through. The zero value enables
	// it with defaults; set Sched.Disable for the single-FIFO ablation.
	// Sched.TenantWeights additionally turns on tenant-weighted fair
	// sharing: device time within each class band (iosched) and, under
	// HStorage mode, cache capacity (the priority cache prefers
	// evicting blocks of tenants holding more than their weight share).
	Sched iosched.Config

	// CachePrefetched lets the priority cache admit scheduler readahead
	// completions into spare capacity (never by evicting resident
	// blocks, pinned log blocks least of all). Off by default: admitting
	// sequential blocks trades Rule 1's cache purity — and its
	// guarantee that scans track raw HDD speed — for warm re-reads, so
	// it is an explicit opt-in.
	CachePrefetched bool

	// Obs attaches the observability layer to the whole storage system:
	// the cache registers hit/miss/eviction counters (labeled by mode),
	// and the set is forwarded to the I/O scheduler and devices
	// (overriding any Sched.Obs). Nil disables (the default).
	Obs *obs.Set
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Policy.N == 0 {
		c.Policy = dss.DefaultPolicySpace()
	}
	if c.SSDSpec.Name == "" {
		c.SSDSpec = device.Intel320()
	}
	if c.HDDSpec.Name == "" {
		c.HDDSpec = device.Cheetah15K()
	}
	return c
}

// ClassStats aggregates cache behaviour for one request class. Reads and
// writes are tracked separately because the paper's per-class tables
// (Tables 4-7) count reads: writes of temporary data, for example, are
// always cache misses by construction (Section 6.3.3).
type ClassStats struct {
	Requests       int64
	AccessedBlocks int64
	Hits           int64 // block-granularity cache hits (reads + writes)

	ReadBlocks  int64
	ReadHits    int64
	WriteBlocks int64
	WriteHits   int64
}

// Snapshot is a point-in-time view of a storage system's counters. The
// experiment tables (Tables 4-7 of the paper) are printed from snapshots.
type Snapshot struct {
	Mode         Mode
	PerClass     map[dss.Class]ClassStats
	CachedBlocks int

	Hits        int64
	Misses      int64
	ReadAllocs  int64
	WriteAllocs int64
	Bypasses    int64
	Reallocs    int64
	Evictions   int64
	DirtyEvict  int64
	Trimmed     int64
	WBFlushes   int64
	// Prefetched counts scheduler readahead blocks admitted into spare
	// cache capacity (never by evicting resident blocks).
	Prefetched int64
	// ShareEvictions counts evictions the tenant capacity shares
	// redirected away from the plain LRU victim to a block of a tenant
	// exceeding its weight share (HStorage mode with tenant weights
	// configured).
	ShareEvictions int64
}

// HitRatio returns total hits over total accessed blocks.
func (s Snapshot) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Class returns the stats bucket for class c (zero value if absent).
func (s Snapshot) Class(c dss.Class) ClassStats { return s.PerClass[c] }

// String renders a compact multi-line summary.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: cached=%d hits=%d misses=%d (%.1f%%) evict=%d trim=%d\n",
		s.Mode, s.CachedBlocks, s.Hits, s.Misses, 100*s.HitRatio(), s.Evictions, s.Trimmed)
	classes := make([]int, 0, len(s.PerClass))
	for c := range s.PerClass {
		classes = append(classes, int(c))
	}
	sort.Ints(classes)
	for _, c := range classes {
		cs := s.PerClass[dss.Class(c)]
		ratio := 0.0
		if cs.AccessedBlocks > 0 {
			ratio = float64(cs.Hits) / float64(cs.AccessedBlocks)
		}
		fmt.Fprintf(&b, "  %-12s req=%-10d blocks=%-10d hits=%-10d ratio=%.1f%%\n",
			dss.Class(c), cs.Requests, cs.AccessedBlocks, cs.Hits, 100*ratio)
	}
	return b.String()
}

// System is a storage configuration under test: a classified-request
// block store with inspectable counters.
type System interface {
	dss.Storage
	// Stats returns a snapshot of the counters.
	Stats() Snapshot
	// ResetStats clears the counters but not the cache contents.
	ResetStats()
	// Mode reports which of the four configurations this is.
	Mode() Mode
	// SSD and HDD expose the underlying devices (either may be nil for
	// the passthrough modes).
	SSD() *device.Device
	HDD() *device.Device
	// Sched exposes the I/O scheduling domain of this system's devices:
	// experiment streams register with it for closed-population
	// dispatch, and the storage manager drains it before settling
	// device busy horizons.
	Sched() *iosched.Group
}

// New builds a storage system for the given configuration.
func New(cfg Config) (System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Obs != nil {
		// One observability set serves the whole stack: the scheduler
		// group registers its own instruments and attaches the devices.
		cfg.Sched.Obs = cfg.Obs
	}
	switch cfg.Mode {
	case HDDOnly:
		return newPassthrough(cfg, false), nil
	case SSDOnly:
		return newPassthrough(cfg, true), nil
	case LRU:
		if cfg.CacheBlocks <= 0 {
			return nil, fmt.Errorf("hybrid: LRU mode needs CacheBlocks > 0")
		}
		return newLRUCache(cfg), nil
	case HStorage:
		if cfg.CacheBlocks <= 0 {
			return nil, fmt.Errorf("hybrid: hStorage mode needs CacheBlocks > 0")
		}
		return newPriorityCache(cfg), nil
	case ARC:
		if cfg.CacheBlocks <= 0 {
			return nil, fmt.Errorf("hybrid: ARC mode needs CacheBlocks > 0")
		}
		return newARCCache(cfg), nil
	}
	return nil, fmt.Errorf("hybrid: unknown mode %v", cfg.Mode)
}

// attachCacheScheds wires a cache's SSD and HDD into one scheduling
// domain: the SSD — addressed by recycled cache-slot numbers, not
// logical LBAs — gets no readahead, while the HDD gets the Rule 1
// sequential class. Shared by every two-device System implementation.
func attachCacheScheds(cfg Config, ssd, hdd *device.Device) (*iosched.Group, *iosched.Scheduler, *iosched.Scheduler) {
	grp := iosched.NewGroup(cfg.Sched)
	ssdS := grp.Attach(ssd, iosched.NoReadahead)
	hddS := grp.Attach(hdd, cfg.Policy.Sequential())
	return grp, ssdS, hddS
}

// submitDev routes one device access through a scheduler on behalf of a
// classified request, honouring its stream identity, tenant attribution
// and background flag: background work is queued without blocking (the
// caller's clock must not advance for it), foreground work returns its
// completion. Shared by every System implementation.
func submitDev(s *iosched.Scheduler, at time.Duration, req dss.Request, op device.Op, lba int64, blocks int) time.Duration {
	if req.Background {
		s.SubmitBackground(at, op, lba, blocks, req.Class, req.Tenant)
		return at
	}
	return s.Submit(at, op, lba, blocks, req.Class, req.Tenant, req.Stream)
}

// statsBase carries the counters shared by all System implementations,
// plus their registry mirrors (`cache.hits`, `cache.misses`,
// `cache.evictions`, `cache.evictions.dirty`, `cache.evictions.share`,
// labeled by mode; nil and inert without Config.Obs).
type statsBase struct {
	mode     Mode
	perClass map[dss.Class]*ClassStats
	snap     Snapshot

	mHits       *obs.Counter
	mMisses     *obs.Counter
	mEvict      *obs.Counter
	mDirtyEvict *obs.Counter
	mShareEvict *obs.Counter
}

func newStatsBase(mode Mode, set *obs.Set) statsBase {
	sb := statsBase{mode: mode, perClass: make(map[dss.Class]*ClassStats)}
	if reg := set.Registry(); reg != nil {
		l := obs.L("mode", mode.String())
		sb.mHits = reg.Counter("cache.hits", l)
		sb.mMisses = reg.Counter("cache.misses", l)
		sb.mEvict = reg.Counter("cache.evictions", l)
		sb.mDirtyEvict = reg.Counter("cache.evictions.dirty", l)
		sb.mShareEvict = reg.Counter("cache.evictions.share", l)
	}
	return sb
}

func (s *statsBase) classStats(c dss.Class) *ClassStats {
	cs := s.perClass[c]
	if cs == nil {
		cs = &ClassStats{}
		s.perClass[c] = cs
	}
	return cs
}

func (s *statsBase) record(c dss.Class, op device.Op, blocks int, hits int64) {
	cs := s.classStats(c)
	cs.Requests++
	cs.AccessedBlocks += int64(blocks)
	cs.Hits += hits
	if op == device.Read {
		cs.ReadBlocks += int64(blocks)
		cs.ReadHits += hits
	} else {
		cs.WriteBlocks += int64(blocks)
		cs.WriteHits += hits
	}
	s.snap.Hits += hits
	s.snap.Misses += int64(blocks) - hits
	s.mHits.Add(hits)
	s.mMisses.Add(int64(blocks) - hits)
}

func (s *statsBase) snapshot(cached int) Snapshot {
	out := s.snap
	out.Mode = s.mode
	out.CachedBlocks = cached
	out.PerClass = make(map[dss.Class]ClassStats, len(s.perClass))
	for c, cs := range s.perClass {
		out.PerClass[c] = *cs
	}
	return out
}

func (s *statsBase) reset() {
	s.snap = Snapshot{}
	s.perClass = make(map[dss.Class]*ClassStats)
}
