package hybrid

import "hstoragedb/internal/dss"

// blockMeta is the cache's per-block metadata: one entry in the lookup
// hash table (Section 5.2, <lbn, <pbn, prio>>) that is simultaneously a
// node of its priority group's intrusive LRU list.
type blockMeta struct {
	lbn    int64
	pbn    int64
	class  int // group id: 1..N, or wbGroup for the write buffer
	dirty  bool
	tenant dss.TenantID // last tenant charged for the block's capacity

	prev, next *blockMeta
}

// lruList is an intrusive doubly-linked list ordered from MRU (front) to
// LRU (back). The zero value must be initialized with init before use.
type lruList struct {
	root blockMeta // sentinel
	n    int
}

func (l *lruList) init() {
	l.root.prev = &l.root
	l.root.next = &l.root
	l.n = 0
}

func (l *lruList) len() int { return l.n }

// pushFront inserts b at the MRU position.
func (l *lruList) pushFront(b *blockMeta) {
	b.prev = &l.root
	b.next = l.root.next
	l.root.next.prev = b
	l.root.next = b
	l.n++
}

// remove unlinks b from the list.
func (l *lruList) remove(b *blockMeta) {
	b.prev.next = b.next
	b.next.prev = b.prev
	b.prev, b.next = nil, nil
	l.n--
}

// moveToFront marks b as most recently used.
func (l *lruList) moveToFront(b *blockMeta) {
	l.remove(b)
	l.pushFront(b)
}

// back returns the LRU entry, or nil if the list is empty.
func (l *lruList) back() *blockMeta {
	if l.n == 0 {
		return nil
	}
	return l.root.prev
}
