# Developer entry points. CI runs the same commands; nothing here is
# load-bearing for the build (plain `go build ./...` works).

GO ?= go
# benchstat-friendly sample count: `make bench` twice (before/after a
# change) and feed the two files to golang.org/x/perf/cmd/benchstat.
BENCH_COUNT ?= 10
BENCH_OUT ?= bench.txt

.PHONY: test race bench hotpath lint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Scheduler hot-path microbenchmarks (indexed vs linear picker across
# queue depths, plus the full opportunistic submit path). -benchmem
# backs the ~0 allocs/op claim; repeated -count samples make the output
# benchstat-ready:
#
#   make bench BENCH_OUT=old.txt
#   ... edit ...
#   make bench BENCH_OUT=new.txt
#   benchstat old.txt new.txt
bench:
	$(GO) test ./internal/iosched -run '^$$' -bench 'BenchmarkSubmit' \
		-benchmem -count $(BENCH_COUNT) | tee $(BENCH_OUT)

# The experiment-level view of the same hot path (grants/sec, allocs/op,
# anticipatory HDD arm), as committed in BENCH_hotpath.json.
hotpath:
	$(GO) run ./cmd/hbench -exp hotpath

# gofmt + vet, the fast pre-push check; the doc and clock-purity lints
# run inside `make test` (internal/doclint).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
